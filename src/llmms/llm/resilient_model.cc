#include "llmms/llm/resilient_model.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <utility>

namespace llmms::llm {

void CircuitBreaker::TransitionLocked(State to) {
  if (state_ == to) return;
  if (history_capacity_ > 0) {
    if (history_.size() >= history_capacity_) {
      history_.erase(history_.begin());
    }
    history_.push_back(Transition{state_, to, call_clock_});
  }
  state_ = to;
}

bool CircuitBreaker::AllowRequest() {
  bool allowed = true;
  Snapshot changed;
  bool notify = false;
  TransitionListener listener;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++call_clock_;
    switch (state_) {
      case State::kClosed:
        allowed = true;
        break;
      case State::kOpen:
        ++fast_rejections_;
        if (++rejections_since_open_ >= open_calls_) {
          TransitionLocked(State::kHalfOpen);
          probe_in_flight_ = false;
          probe_successes_ = 0;
          notify = true;
        }
        allowed = false;
        break;
      case State::kHalfOpen:
        if (probe_in_flight_) {
          ++fast_rejections_;
          allowed = false;
        } else {
          probe_in_flight_ = true;
          allowed = true;
        }
        break;
    }
    if (notify && listener_) {
      changed = SnapshotLocked();
      listener = listener_;
    }
  }
  if (listener) listener(changed);
  return allowed;
}

void CircuitBreaker::RecordSuccess() {
  Snapshot changed;
  bool notify = false;
  TransitionListener listener;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++call_clock_;
    consecutive_failures_ = 0;
    switch (state_) {
      case State::kClosed:
        break;
      case State::kOpen:
        // A stream admitted before the circuit tripped is still delivering.
        // That is good news but not probe evidence — the circuit stays open
        // until a half-open probe spends the probe budget.
        break;
      case State::kHalfOpen:
        if (++probe_successes_ >= probe_budget_) {
          TransitionLocked(State::kClosed);
          probe_in_flight_ = false;
          probe_successes_ = 0;
          notify = true;
        }
        break;
    }
    if (notify && listener_) {
      changed = SnapshotLocked();
      listener = listener_;
    }
  }
  if (listener) listener(changed);
}

void CircuitBreaker::RecordFailure() {
  Snapshot changed;
  bool notify = false;
  TransitionListener listener;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++call_clock_;
    ++total_failures_;
    ++consecutive_failures_;
    probe_in_flight_ = false;
    probe_successes_ = 0;
    if (state_ == State::kHalfOpen ||
        (state_ == State::kClosed &&
         consecutive_failures_ >= failure_threshold_)) {
      TransitionLocked(State::kOpen);
      rejections_since_open_ = 0;
      notify = true;
    }
    if (notify && listener_) {
      changed = SnapshotLocked();
      listener = listener_;
    }
  }
  if (listener) listener(changed);
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

size_t CircuitBreaker::consecutive_failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return consecutive_failures_;
}

size_t CircuitBreaker::total_failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_failures_;
}

size_t CircuitBreaker::fast_rejections() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fast_rejections_;
}

uint64_t CircuitBreaker::call_clock() const {
  std::lock_guard<std::mutex> lock(mu_);
  return call_clock_;
}

std::vector<CircuitBreaker::Transition> CircuitBreaker::history() const {
  std::lock_guard<std::mutex> lock(mu_);
  return history_;
}

CircuitBreaker::Snapshot CircuitBreaker::SnapshotLocked() const {
  Snapshot out;
  out.state = state_;
  out.consecutive_failures = consecutive_failures_;
  out.total_failures = total_failures_;
  out.fast_rejections = fast_rejections_;
  out.rejections_since_open = rejections_since_open_;
  out.probe_successes = probe_successes_;
  out.call_clock = call_clock_;
  out.history = history_;
  return out;
}

CircuitBreaker::Snapshot CircuitBreaker::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return SnapshotLocked();
}

void CircuitBreaker::Restore(const Snapshot& snapshot) {
  std::lock_guard<std::mutex> lock(mu_);
  state_ = snapshot.state;
  consecutive_failures_ = snapshot.consecutive_failures;
  total_failures_ = snapshot.total_failures;
  fast_rejections_ = snapshot.fast_rejections;
  rejections_since_open_ = snapshot.rejections_since_open;
  probe_successes_ = snapshot.probe_successes;
  call_clock_ = snapshot.call_clock;
  history_ = snapshot.history;
  if (history_capacity_ > 0 && history_.size() > history_capacity_) {
    history_.erase(history_.begin(),
                   history_.end() - static_cast<std::ptrdiff_t>(
                                        history_capacity_));
  }
  probe_in_flight_ = false;
}

void CircuitBreaker::SetTransitionListener(TransitionListener listener) {
  std::lock_guard<std::mutex> lock(mu_);
  listener_ = std::move(listener);
}

const char* CircuitStateToString(CircuitBreaker::State state) {
  switch (state) {
    case CircuitBreaker::State::kClosed:
      return "closed";
    case CircuitBreaker::State::kOpen:
      return "open";
    case CircuitBreaker::State::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

double JitteredBackoffSeconds(const ResilienceConfig& config, size_t attempt,
                              Rng* rng) {
  double base = config.backoff_initial_seconds *
                std::pow(config.backoff_multiplier,
                         static_cast<double>(attempt));
  base = std::min(base, config.backoff_max_seconds);
  const double jitter =
      rng->Uniform(1.0 - config.backoff_jitter, 1.0 + config.backoff_jitter);
  return base * jitter;
}

namespace {

class ResilientStream final : public GenerationStream {
 public:
  ResilientStream(std::unique_ptr<GenerationStream> inner,
                  const ResilientModel* owner, Rng rng,
                  double pending_backoff_seconds)
      : inner_(std::move(inner)),
        owner_(owner),
        config_(owner->config()),
        rng_(rng),
        pending_backoff_seconds_(pending_backoff_seconds) {}

  StatusOr<Chunk> NextChunk(size_t max_tokens) override {
    CircuitBreaker& breaker = *owner_->mutable_breaker();
    Status last_error = Status::OK();
    for (size_t attempt = 0; attempt <= config_.max_chunk_retries; ++attempt) {
      auto chunk_or = inner_->NextChunk(max_tokens);
      if (chunk_or.ok()) {
        Chunk chunk = std::move(chunk_or).value();
        // Stall detection: repeated no-progress chunks become a deadline
        // failure so orchestrators never spin on a hung backend.
        if (chunk.num_tokens == 0 && !chunk.done) {
          if (config_.max_stalled_chunks > 0 &&
              ++consecutive_stalls_ >= config_.max_stalled_chunks) {
            consecutive_stalls_ = 0;
            breaker.RecordFailure();
            owner_->CountRetry(0, 0.0, 0, 1);
            return Status::DeadlineExceeded(
                "model '" + owner_->name() + "' stalled for " +
                std::to_string(config_.max_stalled_chunks) +
                " consecutive chunks");
          }
        } else {
          consecutive_stalls_ = 0;
        }
        // Per-chunk deadline over the chunk's simulated cost.
        if (config_.chunk_deadline_seconds > 0.0) {
          double cost = chunk.extra_seconds;
          const double tps = owner_->tokens_per_second();
          if (tps > 0.0) cost += static_cast<double>(chunk.num_tokens) / tps;
          if (cost > config_.chunk_deadline_seconds) {
            breaker.RecordFailure();
            owner_->CountRetry(0, 0.0, 1, 0);
            return Status::DeadlineExceeded(
                "model '" + owner_->name() + "' chunk took " +
                std::to_string(cost) + "s (deadline " +
                std::to_string(config_.chunk_deadline_seconds) + "s)");
          }
        }
        breaker.RecordSuccess();
        chunk.extra_seconds += pending_backoff_seconds_;
        pending_backoff_seconds_ = 0.0;
        return chunk;
      }
      last_error = chunk_or.status();
      if (attempt < config_.max_chunk_retries) {
        const double backoff =
            JitteredBackoffSeconds(config_, attempt, &rng_);
        pending_backoff_seconds_ += backoff;
        owner_->CountRetry(1, backoff, 0, 0);
      }
    }
    breaker.RecordFailure();
    return Status(last_error.code(), "model '" + owner_->name() +
                                         "' failed after " +
                                         std::to_string(
                                             config_.max_chunk_retries + 1) +
                                         " attempts: " + last_error.message());
  }

  const std::string& text() const override { return inner_->text(); }
  size_t tokens_generated() const override {
    return inner_->tokens_generated();
  }
  bool finished() const override { return inner_->finished(); }
  StopReason stop_reason() const override { return inner_->stop_reason(); }

 private:
  std::unique_ptr<GenerationStream> inner_;
  const ResilientModel* owner_;
  ResilienceConfig config_;
  Rng rng_;
  double pending_backoff_seconds_;
  size_t consecutive_stalls_ = 0;
};

}  // namespace

ResilientModel::ResilientModel(std::shared_ptr<LanguageModel> inner,
                               const ResilienceConfig& config)
    : inner_(std::move(inner)),
      config_(config),
      breaker_(config.breaker_failure_threshold, config.breaker_open_calls,
               config.breaker_probe_successes, config.breaker_history),
      rng_(config.seed) {}

StatusOr<std::unique_ptr<GenerationStream>> ResilientModel::StartGeneration(
    const GenerationRequest& request) const {
  if (!breaker_.AllowRequest()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++health_.fast_rejections;
    }
    return Status::ResourceExhausted("circuit open for model '" + name() +
                                     "': failing fast");
  }
  Rng stream_rng;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++health_.starts;
    stream_rng = rng_.Fork();
  }
  double pending_backoff = 0.0;
  Status last_error = Status::OK();
  for (size_t attempt = 0; attempt <= config_.max_start_retries; ++attempt) {
    auto stream_or = inner_->StartGeneration(request);
    if (stream_or.ok()) {
      // Deliberately no RecordSuccess here: accepting a stream is cheap and
      // says nothing about backend health. The breaker closes again only
      // when a chunk actually arrives (ResilientStream::NextChunk), so a
      // backend that accepts work and then dies mid-stream still
      // accumulates consecutive failures and trips the circuit.
      return std::unique_ptr<GenerationStream>(
          std::make_unique<ResilientStream>(std::move(stream_or).value(),
                                            this, stream_rng.Fork(),
                                            pending_backoff));
    }
    last_error = stream_or.status();
    if (attempt < config_.max_start_retries) {
      const double backoff =
          JitteredBackoffSeconds(config_, attempt, &stream_rng);
      pending_backoff += backoff;
      std::lock_guard<std::mutex> lock(mu_);
      ++health_.start_retries;
      health_.backoff_seconds += backoff;
    }
  }
  breaker_.RecordFailure();
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++health_.total_failures;
  }
  return Status(last_error.code(),
                "model '" + name() + "' failed to start after " +
                    std::to_string(config_.max_start_retries + 1) +
                    " attempts: " + last_error.message());
}

void ResilientModel::CountRetry(size_t chunk_retries, double backoff_seconds,
                                size_t deadlines, size_t stalls) const {
  std::lock_guard<std::mutex> lock(mu_);
  health_.chunk_retries += chunk_retries;
  health_.backoff_seconds += backoff_seconds;
  health_.deadlines_exceeded += deadlines;
  health_.stalls_detected += stalls;
}

ResilientModel::Health ResilientModel::health() const {
  Health out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = health_;
  }
  out.circuit = breaker_.state();
  out.consecutive_failures = breaker_.consecutive_failures();
  // Breaker-level failures include chunk-path ones; fast rejections include
  // stream-level rejections counted by the breaker itself.
  out.total_failures = breaker_.total_failures();
  out.fast_rejections = breaker_.fast_rejections();
  return out;
}

}  // namespace llmms::llm
