#ifndef LLMMS_LLM_MODEL_H_
#define LLMMS_LLM_MODEL_H_

#include <memory>
#include <string>

#include "llmms/common/result.h"
#include "llmms/common/status.h"
#include "llmms/llm/types.h"

namespace llmms::llm {

// An in-flight generation. Streams are single-consumer and not thread-safe;
// the runtime serializes access per stream.
class GenerationStream {
 public:
  virtual ~GenerationStream() = default;

  // Produces up to `max_tokens` further tokens. After the stream finishes,
  // further calls return an empty done chunk. `max_tokens == 0` is invalid.
  virtual StatusOr<Chunk> NextChunk(size_t max_tokens) = 0;

  // Full text accumulated so far.
  virtual const std::string& text() const = 0;

  virtual size_t tokens_generated() const = 0;
  virtual bool finished() const = 0;
  virtual StopReason stop_reason() const = 0;
};

// A language model the platform can serve — the plug-and-play unit behind
// the Ollama-style registry. Implementations must be thread-safe at the
// model level (multiple concurrent streams).
class LanguageModel {
 public:
  virtual ~LanguageModel() = default;

  virtual const std::string& name() const = 0;

  // Quantized weight footprint, used by the hardware layer for placement.
  virtual uint64_t memory_mb() const = 0;

  // Nominal decode speed on a reference GPU (tokens/second); the runtime
  // scales it by the hosting device's throughput factor.
  virtual double tokens_per_second() const = 0;

  virtual size_t context_window() const = 0;

  // Begins a streaming generation.
  virtual StatusOr<std::unique_ptr<GenerationStream>> StartGeneration(
      const GenerationRequest& request) const = 0;

  // Convenience: run a generation to completion (bounded by
  // request.max_tokens when non-zero).
  StatusOr<GenerationResult> Generate(const GenerationRequest& request) const;
};

}  // namespace llmms::llm

#endif  // LLMMS_LLM_MODEL_H_
