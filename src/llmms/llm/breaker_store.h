#ifndef LLMMS_LLM_BREAKER_STORE_H_
#define LLMMS_LLM_BREAKER_STORE_H_

#include <map>
#include <mutex>
#include <string>

#include "llmms/common/json.h"
#include "llmms/common/status.h"
#include "llmms/llm/resilient_model.h"

namespace llmms::llm {

// Durable circuit-breaker state: a JSON file mapping model name ->
// CircuitBreaker::Snapshot, so a model quarantined by a tripped breaker
// stays quarantined across server restarts instead of being hammered again
// the moment the process comes back.
//
// Usage:
//   BreakerStore store("/var/lib/llmms/breakers.json");
//   store.Load();                       // ok if the file does not exist yet
//   store.Attach("m1", breaker);        // restores saved state, then
//                                       // registers a transition listener
//                                       // that saves on every state change
//
// Attach() restores the saved snapshot for `model` (if any) into `breaker`
// and installs a transition listener that rewrites the file on every state
// transition. The listener runs outside the breaker lock (see
// CircuitBreaker::SetTransitionListener), so saving — which snapshots the
// transitioning breaker's latest state — cannot deadlock.
//
// The store must outlive every attached breaker (or the breakers' listeners
// must be cleared first); ApiService owns both, in that order.
class BreakerStore {
 public:
  explicit BreakerStore(std::string path);

  // Reads the file into the in-memory map. A missing file is OK (empty
  // store); a malformed one is an error.
  Status Load();

  // Restores `model`'s saved snapshot into `breaker` (no-op if the store has
  // none) and subscribes to its transitions so future changes are persisted.
  void Attach(const std::string& model, CircuitBreaker* breaker);

  // Serializes the current in-memory map to the file (atomically via a temp
  // file + rename).
  Status SaveNow();

  const std::string& path() const { return path_; }

  // True if the store holds a snapshot for `model` (loaded or recorded).
  bool Has(const std::string& model) const;

  // JSON (de)serialization of one snapshot, exposed for tests.
  static Json SnapshotToJson(const CircuitBreaker::Snapshot& snapshot);
  static CircuitBreaker::Snapshot SnapshotFromJson(const Json& json);

 private:
  void Update(const std::string& model,
              const CircuitBreaker::Snapshot& snapshot);

  const std::string path_;
  mutable std::mutex mu_;
  std::map<std::string, CircuitBreaker::Snapshot> snapshots_;
};

}  // namespace llmms::llm

#endif  // LLMMS_LLM_BREAKER_STORE_H_
