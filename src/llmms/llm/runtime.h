#ifndef LLMMS_LLM_RUNTIME_H_
#define LLMMS_LLM_RUNTIME_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "llmms/common/result.h"
#include "llmms/common/status.h"
#include "llmms/common/thread_pool.h"
#include "llmms/hardware/placement.h"
#include "llmms/llm/batch_scheduler.h"
#include "llmms/llm/model.h"
#include "llmms/llm/registry.h"

namespace llmms::llm {

class ModelRuntime;

// A multi-model generation in flight: one stream per participating model,
// with per-model token and simulated-latency accounting. Chunk requests for
// several models execute concurrently on the runtime's thread pool (the
// platform's "parallel inference" capability, §3.4).
//
// The ParallelGeneration must not outlive its ModelRuntime.
class ParallelGeneration {
 public:
  struct ModelStats {
    size_t tokens = 0;
    double simulated_seconds = 0.0;
    // Chunks that took part in a hedge race or failover (Chunk::hedge set by
    // a HedgedModel decorating this model).
    size_t hedges = 0;
    bool finished = false;
    StopReason stop_reason = StopReason::kLength;
    // Set when the model's stream errored (at start or mid-generation). A
    // failed model is also `finished`: it will produce no further tokens.
    bool failed = false;
    std::string error;
  };

  // Result of one parallel round. A model appears in exactly one map: in
  // `chunks` if its stream produced a chunk, in `errors` if it failed this
  // round (or had already failed). One model's failure never discards the
  // chunks the other models generated in the same round.
  struct ChunkBatch {
    std::map<std::string, Chunk> chunks;
    std::map<std::string, Status> errors;
  };

  // Requests the next chunk (up to max_tokens) from one model. A stream
  // error is sticky: the model is marked failed and every further call
  // returns the recorded error. When the request's context (carried in the
  // GenerationRequest) is expired or cancelled, the call returns the typed
  // DeadlineExceeded / Cancelled status instead of generating — the choke
  // point that makes every driver (orchestrators, the streaming endpoint,
  // Generate) honor the request deadline without knowing about it.
  StatusOr<Chunk> NextChunk(const std::string& model, size_t max_tokens);

  // Requests chunks from several models concurrently. Per-model stream
  // errors are reported in the batch, not as the call's status; the call
  // itself only fails on misuse (a model that is not part of the
  // generation) or when the request context has expired / been cancelled —
  // a whole-request condition, not any single model's fault.
  StatusOr<ChunkBatch> NextChunks(
      const std::vector<std::pair<std::string, size_t>>& requests);

  // Accumulated response text of a model.
  StatusOr<std::string> TextOf(const std::string& model) const;

  StatusOr<ModelStats> StatsOf(const std::string& model) const;

  // Names of participating models, in the order given at start.
  const std::vector<std::string>& models() const { return order_; }

  // Total tokens across all models.
  size_t TotalTokens() const;

  // Simulated wall-clock: per-model chunk times overlap when issued through
  // NextChunks (parallel), so the wall clock is the max over a round, summed
  // over rounds. Invariant (locked down by llm_runtime_test): a round
  // charges only the streams actually scheduled in it — models that are
  // idle, already finished, or not requested contribute nothing, with or
  // without a BatchScheduler multiplexing the replicas underneath.
  double SimulatedWallSeconds() const { return simulated_wall_seconds_; }

  ~ParallelGeneration();

 private:
  friend class ModelRuntime;

  struct Entry {
    // Null when the model failed to start; stats.failed is set instead.
    std::unique_ptr<GenerationStream> stream;
    hardware::Device* device = nullptr;  // where the model is placed
    double effective_tps = 1.0;
    ModelStats stats;
    Status error;  // sticky stream error, meaningful when stats.failed
    // Continuous-batching admission (DESIGN.md §13): set when the runtime
    // has a BatchScheduler and the stream started; every chunk of this
    // entry then runs inside a scheduler grant.
    BatchScheduler::StreamId sched_id = 0;
    bool scheduled = false;
  };

  explicit ParallelGeneration(ThreadPool* pool) : pool_(pool) {}

  StatusOr<Chunk> NextChunkLocked(Entry* entry, size_t max_tokens);
  // NextChunkLocked routed through the shared scheduler's grant cycle when
  // this entry is admitted to one; plain NextChunkLocked otherwise.
  StatusOr<Chunk> ScheduledChunk(Entry* entry, size_t max_tokens);

  ThreadPool* pool_;
  std::vector<std::string> order_;
  std::unordered_map<std::string, Entry> entries_;
  // The originating request's deadline/cancellation (null = unbounded),
  // taken from GenerationRequest::context at StartGeneration.
  std::shared_ptr<RequestContext> context_;
  // Shared continuous-batching scheduler (null = unbatched, the default
  // path, preserved unchanged). Shared ownership so an in-flight
  // generation survives a runtime reconfiguration.
  std::shared_ptr<BatchScheduler> scheduler_;
  mutable std::mutex mu_;
  double simulated_wall_seconds_ = 0.0;
};

// The Ollama-daemon substitute: owns the thread pool, loads registered
// models onto devices via the hardware layer, and serves streaming
// generations.
class ModelRuntime {
 public:
  ModelRuntime(std::shared_ptr<ModelRegistry> registry,
               std::shared_ptr<hardware::HardwareManager> hardware,
               size_t num_threads = 4);

  ModelRuntime(const ModelRuntime&) = delete;
  ModelRuntime& operator=(const ModelRuntime&) = delete;

  // Loads a registered model onto the best available device, reserving its
  // memory footprint. A HedgedModel reserves its *peak* footprint: the
  // steady-state residency plus the largest backup replica, since a hedge
  // race keeps two replicas resident simultaneously (DESIGN.md §11) — a
  // device that only fits the group between races is skipped. Loading an
  // already-loaded model is a no-op.
  Status LoadModel(const std::string& name);
  Status UnloadModel(const std::string& name);
  bool IsLoaded(const std::string& name) const;
  std::vector<std::string> LoadedModels() const;

  // Where each loaded model sits and what it reserves, sorted by model name
  // (the /api/health placement block).
  struct PlacementInfo {
    std::string model;
    std::string device;
    uint64_t memory_mb = 0;       // steady-state footprint
    uint64_t hedge_extra_mb = 0;  // extra headroom reserved for hedge races
  };
  std::vector<PlacementInfo> PlacementSnapshot() const;

  // Starts a parallel generation across `models` (all must be loaded —
  // asking for an unloaded model fails the whole call, a config error). A
  // model whose StartGeneration is *refused* is tolerated: it joins the
  // generation pre-failed (StatsOf reports failed) so orchestrators can
  // quarantine it; the call only fails when every model refuses.
  StatusOr<std::unique_ptr<ParallelGeneration>> StartGeneration(
      const std::vector<std::string>& models,
      const GenerationRequest& request);

  // Runs a single model to completion.
  StatusOr<GenerationResult> Generate(const std::string& model,
                                      const GenerationRequest& request);

  // Turns on continuous batching (DESIGN.md §13): every generation started
  // afterwards admits its streams to one shared llm::BatchScheduler, so
  // concurrent queries multiplex the same model replicas chunk-by-chunk
  // instead of pretending each query has the model to itself. In-flight
  // generations keep the scheduler they started with. Without this call
  // the runtime behaves exactly as before (scheduler-off compatibility
  // contract).
  void EnableScheduler(const SchedulerConfig& config);
  // The active scheduler, or null when batching is off.
  std::shared_ptr<BatchScheduler> scheduler() const;

  const std::shared_ptr<ModelRegistry>& registry() const { return registry_; }
  const std::shared_ptr<hardware::HardwareManager>& hardware() const {
    return hardware_;
  }

 private:
  struct LoadedModel {
    std::shared_ptr<LanguageModel> model;
    std::unique_ptr<hardware::Placement> placement;
  };

  std::shared_ptr<ModelRegistry> registry_;
  std::shared_ptr<hardware::HardwareManager> hardware_;
  ThreadPool pool_;

  mutable std::mutex mu_;
  std::unordered_map<std::string, LoadedModel> loaded_;
  std::shared_ptr<BatchScheduler> scheduler_;  // null = batching off
};

}  // namespace llmms::llm

#endif  // LLMMS_LLM_RUNTIME_H_
