#ifndef LLMMS_LLM_RUNTIME_H_
#define LLMMS_LLM_RUNTIME_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "llmms/common/result.h"
#include "llmms/common/status.h"
#include "llmms/common/thread_pool.h"
#include "llmms/hardware/placement.h"
#include "llmms/llm/model.h"
#include "llmms/llm/registry.h"

namespace llmms::llm {

class ModelRuntime;

// A multi-model generation in flight: one stream per participating model,
// with per-model token and simulated-latency accounting. Chunk requests for
// several models execute concurrently on the runtime's thread pool (the
// platform's "parallel inference" capability, §3.4).
//
// The ParallelGeneration must not outlive its ModelRuntime.
class ParallelGeneration {
 public:
  struct ModelStats {
    size_t tokens = 0;
    double simulated_seconds = 0.0;
    bool finished = false;
    StopReason stop_reason = StopReason::kLength;
  };

  // Requests the next chunk (up to max_tokens) from one model.
  StatusOr<Chunk> NextChunk(const std::string& model, size_t max_tokens);

  // Requests chunks from several models concurrently; returns model -> chunk.
  StatusOr<std::map<std::string, Chunk>> NextChunks(
      const std::vector<std::pair<std::string, size_t>>& requests);

  // Accumulated response text of a model.
  StatusOr<std::string> TextOf(const std::string& model) const;

  StatusOr<ModelStats> StatsOf(const std::string& model) const;

  // Names of participating models, in the order given at start.
  const std::vector<std::string>& models() const { return order_; }

  // Total tokens across all models.
  size_t TotalTokens() const;

  // Simulated wall-clock: per-model chunk times overlap when issued through
  // NextChunks (parallel), so the wall clock is the max over a round, summed
  // over rounds.
  double SimulatedWallSeconds() const { return simulated_wall_seconds_; }

 private:
  friend class ModelRuntime;

  struct Entry {
    std::unique_ptr<GenerationStream> stream;
    hardware::Device* device = nullptr;  // where the model is placed
    double effective_tps = 1.0;
    ModelStats stats;
  };

  explicit ParallelGeneration(ThreadPool* pool) : pool_(pool) {}

  StatusOr<Chunk> NextChunkLocked(Entry* entry, size_t max_tokens);

  ThreadPool* pool_;
  std::vector<std::string> order_;
  std::unordered_map<std::string, Entry> entries_;
  mutable std::mutex mu_;
  double simulated_wall_seconds_ = 0.0;
};

// The Ollama-daemon substitute: owns the thread pool, loads registered
// models onto devices via the hardware layer, and serves streaming
// generations.
class ModelRuntime {
 public:
  ModelRuntime(std::shared_ptr<ModelRegistry> registry,
               std::shared_ptr<hardware::HardwareManager> hardware,
               size_t num_threads = 4);

  ModelRuntime(const ModelRuntime&) = delete;
  ModelRuntime& operator=(const ModelRuntime&) = delete;

  // Loads a registered model onto the best available device, reserving its
  // memory footprint. Loading an already-loaded model is a no-op.
  Status LoadModel(const std::string& name);
  Status UnloadModel(const std::string& name);
  bool IsLoaded(const std::string& name) const;
  std::vector<std::string> LoadedModels() const;

  // Starts a parallel generation across `models` (all must be loaded).
  StatusOr<std::unique_ptr<ParallelGeneration>> StartGeneration(
      const std::vector<std::string>& models,
      const GenerationRequest& request);

  // Runs a single model to completion.
  StatusOr<GenerationResult> Generate(const std::string& model,
                                      const GenerationRequest& request);

  const std::shared_ptr<ModelRegistry>& registry() const { return registry_; }
  const std::shared_ptr<hardware::HardwareManager>& hardware() const {
    return hardware_;
  }

 private:
  struct LoadedModel {
    std::shared_ptr<LanguageModel> model;
    std::unique_ptr<hardware::Placement> placement;
  };

  std::shared_ptr<ModelRegistry> registry_;
  std::shared_ptr<hardware::HardwareManager> hardware_;
  ThreadPool pool_;

  mutable std::mutex mu_;
  std::unordered_map<std::string, LoadedModel> loaded_;
};

}  // namespace llmms::llm

#endif  // LLMMS_LLM_RUNTIME_H_
