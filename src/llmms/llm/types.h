#ifndef LLMMS_LLM_TYPES_H_
#define LLMMS_LLM_TYPES_H_

#include <cstdint>
#include <string>

namespace llmms::llm {

// Why a generation ended — mirrors Ollama's `done_reason`.
enum class StopReason {
  kLength,  // the token budget cut the answer off
  kStop,    // the model finished its answer naturally
  kCancelled,
};

const char* StopReasonToString(StopReason reason);

// One request to a model.
struct GenerationRequest {
  std::string prompt;
  // Hard cap for the whole generation; 0 = model decides (unbounded).
  size_t max_tokens = 0;
  // Extra entropy mixed into the model's own seed, for reproducible
  // sampling variation across repeated calls.
  uint64_t seed = 0;
};

// One streamed chunk of output.
struct Chunk {
  std::string text;        // the newly produced text (with leading space
                           // where needed to concatenate cleanly)
  size_t num_tokens = 0;   // tokens in this chunk
  bool done = false;       // true when the stream is finished
  StopReason stop_reason = StopReason::kLength;  // meaningful when done
  // Additional simulated latency attached by decorators (fault injection
  // spikes, resilience-layer retry backoff). The runtime folds this into
  // per-model and wall-clock simulated time on top of the tokens/tps cost.
  double extra_seconds = 0.0;
};

// A completed generation.
struct GenerationResult {
  std::string text;
  size_t num_tokens = 0;
  StopReason stop_reason = StopReason::kStop;
  // Simulated wall-clock generation time, filled by the runtime.
  double simulated_seconds = 0.0;
};

}  // namespace llmms::llm

#endif  // LLMMS_LLM_TYPES_H_
