#ifndef LLMMS_LLM_TYPES_H_
#define LLMMS_LLM_TYPES_H_

#include <cstdint>
#include <memory>
#include <string>

#include "llmms/common/deadline.h"

namespace llmms::llm {

// Why a generation ended — mirrors Ollama's `done_reason`.
enum class StopReason {
  kLength,  // the token budget cut the answer off
  kStop,    // the model finished its answer naturally
  kCancelled,
};

const char* StopReasonToString(StopReason reason);

// How a chunk relates to a hedge race (see llm::HedgedModel). Orchestrators
// stay oblivious to replica swaps except for this flag, which the runtime
// counts and the orchestrators surface as an EventType::kHedge trace event.
enum class HedgeOutcome : uint8_t {
  kNone,        // no hedge fired while producing this chunk
  kPrimaryWon,  // a hedge fired but the in-flight stream delivered first
  kBackupWon,   // the backup replica delivered first and was adopted
  kFailover,    // the serving stream died and a backup replica took over
};

const char* HedgeOutcomeToString(HedgeOutcome outcome);

// One request to a model.
struct GenerationRequest {
  std::string prompt;
  // Hard cap for the whole generation; 0 = model decides (unbounded).
  size_t max_tokens = 0;
  // Extra entropy mixed into the model's own seed, for reproducible
  // sampling variation across repeated calls.
  uint64_t seed = 0;
  // Wall-clock deadline + cancellation for the request driving this
  // generation (null = unbounded). The runtime's ParallelGeneration checks
  // it before every chunk, so a client timeout or disconnect stops the
  // generation at the next chunk boundary with a typed DeadlineExceeded /
  // Cancelled status instead of burning a worker to completion. Local-only:
  // the federation adapter does not serialize it (a remote peer protects
  // itself with its own socket deadlines).
  std::shared_ptr<RequestContext> context;

  // --- Continuous-batching hints (DESIGN.md §13), meaningful only when the
  // runtime has a BatchScheduler enabled; ignored otherwise. ---
  // Advisory whole-query token budget used to derive the stream's scheduler
  // weight (0 falls back to max_tokens). Orchestrators fill it from their
  // own budget config since they pass max_tokens = 0.
  size_t token_budget = 0;
  // Explicit scheduler weight override; <= 0 derives the weight from
  // token_budget and the context's deadline slack.
  double scheduler_weight = 0.0;
  // Elevated dispatch priority: the admission jumps the run queue the way a
  // hedge launch does (DESIGN.md §10/§13).
  bool hedge_priority = false;
};

// One streamed chunk of output.
struct Chunk {
  std::string text;        // the newly produced text (with leading space
                           // where needed to concatenate cleanly)
  size_t num_tokens = 0;   // tokens in this chunk
  bool done = false;       // true when the stream is finished
  StopReason stop_reason = StopReason::kLength;  // meaningful when done
  // Additional simulated latency attached by decorators (fault injection
  // spikes, resilience-layer retry backoff, hedge-race accounting). The
  // runtime folds this into per-model and wall-clock simulated time on top
  // of the tokens/tps cost.
  double extra_seconds = 0.0;
  // Set by llm::HedgedModel when a hedge race fired while this chunk was in
  // flight; kNone everywhere else.
  HedgeOutcome hedge = HedgeOutcome::kNone;
};

// A completed generation.
struct GenerationResult {
  std::string text;
  size_t num_tokens = 0;
  StopReason stop_reason = StopReason::kStop;
  // Simulated wall-clock generation time, filled by the runtime.
  double simulated_seconds = 0.0;
};

}  // namespace llmms::llm

#endif  // LLMMS_LLM_TYPES_H_
