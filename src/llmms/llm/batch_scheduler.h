#ifndef LLMMS_LLM_BATCH_SCHEDULER_H_
#define LLMMS_LLM_BATCH_SCHEDULER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "llmms/common/deadline.h"
#include "llmms/common/result.h"
#include "llmms/common/status.h"
#include "llmms/llm/types.h"

namespace llmms::llm {

// Continuous batching across concurrent queries (DESIGN.md §13).
//
// Each loaded model exposes a fixed number of replica slots; a slot serves
// one chunk at a time. Every in-flight generation stream is admitted with a
// weight (derived from its token budget and deadline slack — the
// "inference-time budget control" signal) and competes for its model's
// slots under start-time fair queueing: the runnable stream with the lowest
// weighted virtual time is dispatched next, ties broken by admission order,
// hedge admissions first. Preemption happens at chunk boundaries only — a
// stream that loses its slot keeps its partial output and simply re-enters
// the run queue — so the scheduler never corrupts a stream, it only decides
// who decodes next.
struct SchedulerConfig {
  // Concurrent chunk slots per model. 1 models a single shared replica;
  // vLLM-style deployments use the replica count of the serving pool.
  size_t replicas_per_model = 1;
  // Per-model overrides of replicas_per_model.
  std::map<std::string, size_t> replicas;
  // Weight clamp bounds for derived and caller-supplied weights.
  double min_weight = 1.0 / 16.0;
  double max_weight = 16.0;
  // Budget that maps to weight 1.0 (a query asking for 2x the reference
  // budget gets 2x the replica share, clamped to the bounds above).
  double reference_budget_tokens = 2048.0;
  // Deadline slack below this many seconds boosts a stream's weight
  // proportionally (urgency), up to urgency_cap.
  double urgency_slack_seconds = 30.0;
  double urgency_cap = 4.0;
  // Decision log ring size; 0 disables tracing.
  size_t trace_capacity = 4096;
};

class BatchScheduler {
 public:
  using StreamId = uint64_t;
  // Produces the stream's next chunk of up to max_tokens. In deterministic
  // mode (AdmitSource/RunRound) the returned chunk's extra_seconds plus
  // num_tokens / tokens_per_second is the chunk's simulated replica cost.
  using ChunkFn = std::function<StatusOr<Chunk>(size_t max_tokens)>;

  struct AdmitOptions {
    std::string model;  // replica class the stream competes in
    // Explicit weight; <= 0 derives it from token_budget + context slack.
    double weight = 0.0;
    size_t token_budget = 0;  // advisory whole-query budget (tokens)
    // Hedge launches jump the run queue: they dispatch before any
    // non-hedge stream so a race can actually catch up (DESIGN.md §10).
    bool hedge = false;
    // Per-stream deadline/cancellation; an expired or cancelled stream is
    // unwound with the typed DeadlineExceeded / Cancelled status instead of
    // being dispatched.
    std::shared_ptr<RequestContext> context;
    // Nominal decode speed used for replica-occupancy accounting (0 = cost
    // is extra_seconds only).
    double tokens_per_second = 0.0;
  };

  explicit BatchScheduler(const SchedulerConfig& config);

  const SchedulerConfig& config() const { return config_; }

  // The weight an admission with this budget and deadline slack receives
  // (deterministic; used by the runtime and directly testable).
  double WeightFor(size_t token_budget, double deadline_slack_seconds) const;

  // Registers a stream. Threaded mode: the owner later calls ExecuteChunk
  // per chunk and Finish when the stream completes or is abandoned.
  StreamId Admit(const AdmitOptions& options);

  // Deterministic mode: registers a stream together with its chunk source;
  // RunRound dispatches it synchronously. A source returning a done chunk
  // (or an error) retires the stream.
  StreamId AdmitSource(const AdmitOptions& options, ChunkFn source);

  // Retires a stream (idempotent). Its service-token total is retained for
  // the fairness index; a running stream finishes its in-flight chunk
  // first (callers retire after their last ExecuteChunk returns).
  void Finish(StreamId id);

  // Blocks until the scheduler grants this stream one of its model's
  // replica slots (lowest weighted virtual time first, hedges first), runs
  // `fn` while holding the slot, then releases it. Returns fn's result, or
  // the stream's typed DeadlineExceeded / Cancelled status when its context
  // dies before the slot is granted (the stream is then retired; partial
  // output held by the caller is untouched).
  StatusOr<Chunk> ExecuteChunk(StreamId id, size_t max_tokens,
                               const ChunkFn& fn);

  // One deterministic chunk round: unwinds expired sourced streams, then
  // dispatches, per model, up to `replicas` runnable sourced streams in
  // priority order and runs their sources sequentially in dispatch order.
  struct Dispatched {
    StreamId stream = 0;
    std::string model;
    size_t slot = 0;
    Chunk chunk;
    double cost_seconds = 0.0;
  };
  struct RoundResult {
    size_t round = 0;  // 1-based sequence number of this RunRound call
    std::vector<Dispatched> executed;
    // Streams unwound this round with their typed terminal status
    // (deadline expiry / cancellation) or the source's error.
    std::vector<std::pair<StreamId, Status>> unwound;
    // Slots run in parallel: the round's simulated duration is the max
    // dispatched cost; idle replicas charge nothing.
    double max_cost_seconds = 0.0;
    double total_cost_seconds = 0.0;
  };
  RoundResult RunRound(size_t max_tokens);

  // True while any sourced stream is admitted and not yet retired.
  bool HasRunnable() const;

  struct StreamInfo {
    StreamId id = 0;
    std::string model;
    double weight = 1.0;
    bool hedge = false;
    double virtual_time = 0.0;
    size_t service_tokens = 0;
    size_t chunks = 0;
    size_t preemptions = 0;
    bool running = false;
  };
  struct ModelInfo {
    std::string model;
    size_t replicas = 0;
    // Cumulative simulated seconds each slot spent serving chunks; the max
    // across slots is the model's batched makespan so far.
    std::vector<double> slot_busy_seconds;
  };
  struct Stats {
    size_t replicas_per_model = 0;
    size_t admitted_total = 0;
    size_t finished_total = 0;
    size_t hedge_admitted_total = 0;
    size_t expired_total = 0;   // streams unwound by deadline/cancel
    size_t dispatches = 0;      // chunk grants
    size_t rounds = 0;          // deterministic rounds + threaded epochs
    size_t preempted_total = 0; // slot handed to another runnable stream
    size_t runnable = 0;        // gauge: admitted, not finished
    size_t waiting = 0;         // gauge: blocked in ExecuteChunk
    size_t running = 0;         // gauge: holding a slot
    size_t total_service_tokens = 0;
    // Jain index over weight-normalized service tokens of every stream
    // that received service (active and retired); 1.0 when empty.
    double fairness_index = 1.0;
    std::vector<StreamInfo> streams;  // active streams, by id
    std::vector<ModelInfo> models;    // by model name
  };
  Stats stats() const;

  // The decision log (admit/grant/yield/preempt/expire/finish lines),
  // oldest first — deterministic under RunRound, used by the golden-trace
  // suite.
  std::vector<std::string> Trace() const;

 private:
  struct Stream {
    StreamId id = 0;
    std::string model;
    double weight = 1.0;
    bool hedge = false;
    std::shared_ptr<RequestContext> context;
    ChunkFn source;  // deterministic mode only
    double tokens_per_second = 0.0;
    uint64_t admit_seq = 0;
    double virtual_time = 0.0;
    size_t service_tokens = 0;
    size_t chunks = 0;
    size_t preemptions = 0;
    bool waiting = false;  // threaded: parked in ExecuteChunk
    bool granted = false;  // threaded: slot assigned, not yet running
    bool running = false;  // slot held, chunk in flight
    bool finished = false;
    size_t slot = 0;  // meaningful while granted/running
  };
  struct ModelState {
    size_t replicas = 1;
    std::vector<StreamId> slot_holder;  // last stream granted each slot
    std::vector<bool> slot_busy;
    std::vector<double> slot_busy_seconds;
    // SFQ virtual clock: the start tag of the most recent dispatch; new
    // admissions join here so they can neither starve incumbents nor be
    // starved by them.
    double virtual_clock = 0.0;
  };
  struct Retired {
    size_t service_tokens = 0;
    double weight = 1.0;
  };

  ModelState* ModelOf(const std::string& model);
  Stream* FindLocked(StreamId id);
  // Best waiting (threaded) or runnable sourced (deterministic) stream of
  // `model`: hedges first, then lowest virtual time, then admission order.
  Stream* PickLocked(ModelState* state, const std::string& model,
                     bool sourced);
  // Assigns `stream` a free slot of its model, recording a preemption when
  // the slot's previous holder is still runnable.
  void GrantSlotLocked(ModelState* state, Stream* stream);
  // Releases the slot after a chunk and charges its occupancy.
  void YieldSlotLocked(ModelState* state, Stream* stream, size_t tokens,
                       double cost_seconds);
  // Grants free slots to waiting threaded streams in priority order.
  void ScheduleLocked(const std::string& model);
  void RetireLocked(Stream* stream);
  void TraceLocked(const std::string& line);
  double JainLocked() const;
  StreamId AdmitLocked(const AdmitOptions& options, ChunkFn source);

  const SchedulerConfig config_;

  mutable std::mutex mu_;
  std::condition_variable cv_;  // wakes ExecuteChunk waiters on grants
  StreamId next_id_ = 1;
  uint64_t admit_seq_ = 0;
  std::unordered_map<StreamId, Stream> streams_;
  std::unordered_map<std::string, ModelState> models_;
  std::vector<Retired> retired_;  // bounded ring of finished streams
  size_t retired_next_ = 0;
  std::deque<std::string> trace_;
  size_t rounds_ = 0;
  size_t dispatches_ = 0;
  size_t preempted_total_ = 0;
  size_t admitted_total_ = 0;
  size_t finished_total_ = 0;
  size_t hedge_admitted_total_ = 0;
  size_t expired_total_ = 0;
  size_t total_service_tokens_ = 0;
  // Threaded-mode round epochs: a new "round" starts when a stream is
  // granted a second slot within the current epoch.
  std::vector<StreamId> epoch_grants_;
};

}  // namespace llmms::llm

#endif  // LLMMS_LLM_BATCH_SCHEDULER_H_
