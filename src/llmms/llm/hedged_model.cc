#include "llmms/llm/hedged_model.h"

#include <algorithm>
#include <limits>

namespace llmms::llm {
namespace {

// The simulated cost the runtime will charge for a chunk produced by a
// replica running at `tps` tokens/second.
double ChunkCost(const Chunk& chunk, double tps) {
  double cost = chunk.extra_seconds;
  if (tps > 0.0) cost += static_cast<double>(chunk.num_tokens) / tps;
  return cost;
}

// Joins replica texts across an adoption boundary: replicas disagree on
// whether chunk text carries its own leading space, so insert one only when
// neither side provides it.
void AppendJoined(std::string* text, const std::string& piece) {
  if (piece.empty()) return;
  if (!text->empty() && text->back() != ' ' && piece.front() != ' ') {
    text->push_back(' ');
  }
  *text += piece;
}

bool EndsWith(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// Consecutive zero-token, not-done catch-up chunks tolerated before a
// backup launch is abandoned — a backstop for a stalling backup that is not
// wrapped in its own ResilientModel.
constexpr size_t kMaxCatchupStalls = 64;

class HedgedStream final : public GenerationStream {
 public:
  HedgedStream(const HedgedModel* owner,
               std::unique_ptr<GenerationStream> stream, size_t replica,
               GenerationRequest request)
      : owner_(owner),
        request_(std::move(request)),
        active_(std::move(stream)),
        active_replica_(replica),
        next_backup_(replica + 1) {}

  StatusOr<Chunk> NextChunk(size_t max_tokens) override {
    if (max_tokens == 0) {
      return Status::InvalidArgument("NextChunk requires max_tokens > 0");
    }
    if (finished_) {
      Chunk chunk;
      chunk.done = true;
      chunk.stop_reason = stop_reason_;
      return chunk;
    }
    auto chunk_or = active_->NextChunk(max_tokens);
    if (!chunk_or.ok()) return FailOver(chunk_or.status(), max_tokens);

    Chunk chunk = std::move(chunk_or).value();
    const double active_tps =
        owner_->replica(active_replica_)->tokens_per_second();
    const double cost = ChunkCost(chunk, active_tps);
    // Threshold from the history *before* this chunk: the hedge decision is
    // made while the chunk is in flight, and a tail spike must not inflate
    // the percentile it is being compared against.
    const double threshold = owner_->ThresholdFor(active_replica_);
    owner_->RecordLatency(active_replica_, cost);
    if (cost > threshold && next_backup_ < owner_->replica_count()) {
      // The in-flight wait crossed the replica's own tail percentile: at
      // simulated time `threshold` the backup launches on the same prompt,
      // catches up to the emitted tokens, and the two streams race.
      Launch launch = LaunchBackup(next_backup_++, max_tokens);
      const double backup_delivery = threshold + launch.cost();
      if (launch.ok && backup_delivery < cost) {
        // Backup delivered first: adopt it and cancel the serving stream.
        // The cancelled in-flight chunk plus the backup's catch-up work is
        // the documented hedge overhead — tracked, never charged.
        owner_->CountHedge(1, 1, 0, 0,
                           chunk.num_tokens + launch.catchup_tokens,
                           cost + launch.catchup_cost);
        Chunk adopted =
            Adopt(std::move(launch), threshold, /*discarded=*/&chunk);
        adopted.hedge = HedgeOutcome::kBackupWon;
        return Emit(std::move(adopted));
      }
      // The serving stream won the race (or the backup never reached a race
      // chunk): cancel the backup and emit the chunk unchanged.
      owner_->CountHedge(1, 0, 1, 0,
                         launch.catchup_tokens + launch.chunk.num_tokens,
                         launch.cost());
      chunk.hedge = HedgeOutcome::kPrimaryWon;
    }
    return Emit(std::move(chunk));
  }

  const std::string& text() const override {
    return swapped_ ? text_ : active_->text();
  }
  size_t tokens_generated() const override { return emitted_tokens_; }
  bool finished() const override { return finished_; }
  StopReason stop_reason() const override { return stop_reason_; }

 private:
  struct Launch {
    bool ok = false;
    Status error = Status::OK();
    std::unique_ptr<GenerationStream> stream;
    size_t replica = 0;
    double tps = 0.0;
    size_t catchup_tokens = 0;   // regenerated tokens, discarded on adoption
    double catchup_cost = 0.0;   // simulated seconds of the catch-up phase
    Chunk chunk;                 // the backup's race chunk
    double chunk_cost = 0.0;
    double cost() const { return catchup_cost + chunk_cost; }
  };

  // Starts `replica` on the stream's prompt and regenerates the tokens this
  // generation already emitted (their text is discarded — replicas may word
  // their answers differently, and the emitted prefix has already been
  // served). Fails if the backup errors, stalls, or finishes before it can
  // produce a single new token.
  Launch LaunchBackup(size_t replica, size_t max_tokens) {
    Launch launch;
    launch.replica = replica;
    const auto& model = owner_->replica(replica);
    launch.tps = model->tokens_per_second();
    auto stream_or = model->StartGeneration(request_);
    if (!stream_or.ok()) {
      launch.error = stream_or.status();
      return launch;
    }
    launch.stream = std::move(stream_or).value();
    const size_t step =
        std::max<size_t>(1, owner_->config().catchup_chunk_tokens);
    size_t stalls = 0;
    while (launch.stream->tokens_generated() < emitted_tokens_ &&
           !launch.stream->finished()) {
      const size_t need = emitted_tokens_ - launch.stream->tokens_generated();
      auto caught = launch.stream->NextChunk(std::min(step, need));
      if (!caught.ok()) {
        launch.error = caught.status();
        launch.stream.reset();
        return launch;
      }
      const double cost = ChunkCost(*caught, launch.tps);
      owner_->RecordLatency(replica, cost);
      launch.catchup_cost += cost;
      launch.catchup_tokens += caught->num_tokens;
      if (caught->num_tokens == 0 && !caught->done) {
        if (++stalls >= kMaxCatchupStalls) {
          launch.error = Status::DeadlineExceeded(
              "hedge backup '" + model->name() + "' stalled during catch-up");
          launch.stream.reset();
          return launch;
        }
      } else {
        stalls = 0;
      }
    }
    if (launch.stream->finished()) {
      // The backup's whole answer fits inside the already-emitted prefix:
      // it has nothing new to race with.
      launch.error = Status::ResourceExhausted(
          "hedge backup '" + model->name() +
          "' finished before producing a new chunk");
      launch.stream.reset();
      return launch;
    }
    auto race = launch.stream->NextChunk(max_tokens);
    if (!race.ok()) {
      launch.error = race.status();
      launch.stream.reset();
      return launch;
    }
    launch.chunk_cost = ChunkCost(*race, launch.tps);
    owner_->RecordLatency(replica, launch.chunk_cost);
    launch.chunk = std::move(race).value();
    if (launch.chunk.num_tokens == 0 && launch.chunk.done) {
      launch.error = Status::ResourceExhausted(
          "hedge backup '" + model->name() +
          "' finished before producing a new chunk");
      launch.stream.reset();
      return launch;
    }
    launch.ok = true;
    return launch;
  }

  // Swaps the adopted backup in as the serving stream and returns its race
  // chunk, re-priced so the runtime charges the race winner's delivery time
  // (`launch_delay` + the backup's catch-up and chunk costs) against the
  // hedged model's nominal speed.
  Chunk Adopt(Launch launch, double launch_delay, const Chunk* discarded) {
    if (!swapped_) {
      text_ = active_->text();
      if (discarded != nullptr && !discarded->text.empty() &&
          EndsWith(text_, discarded->text)) {
        // The serving stream had already folded its cancelled in-flight
        // chunk into its accumulated text; emitted text excludes it.
        text_.resize(text_.size() - discarded->text.size());
        while (!text_.empty() && text_.back() == ' ') text_.pop_back();
      }
      swapped_ = true;
    }
    active_ = std::move(launch.stream);
    active_replica_ = launch.replica;
    Chunk chunk = std::move(launch.chunk);
    const double total = launch_delay + launch.catchup_cost + launch.chunk_cost;
    const double outer_tps = owner_->tokens_per_second();
    const double token_cost =
        outer_tps > 0.0 ? static_cast<double>(chunk.num_tokens) / outer_tps
                        : 0.0;
    chunk.extra_seconds = std::max(0.0, total - token_cost);
    return chunk;
  }

  // Serving-stream death: walk the remaining backups; the first that starts,
  // catches up, and produces a chunk takes over. Only when every replica is
  // exhausted does the original stream error surface (for the orchestrator
  // to quarantine).
  StatusOr<Chunk> FailOver(const Status& original, size_t max_tokens) {
    if (!owner_->config().failover_on_error) return original;
    Status last = original;
    while (next_backup_ < owner_->replica_count()) {
      Launch launch = LaunchBackup(next_backup_++, max_tokens);
      if (!launch.ok) {
        owner_->CountHedge(0, 0, 0, 0, launch.catchup_tokens,
                           launch.catchup_cost);
        last = launch.error;
        continue;
      }
      owner_->CountHedge(0, 0, 0, 1, launch.catchup_tokens,
                         launch.catchup_cost);
      Chunk adopted = Adopt(std::move(launch), 0.0, /*discarded=*/nullptr);
      adopted.hedge = HedgeOutcome::kFailover;
      return Emit(std::move(adopted));
    }
    return last;
  }

  StatusOr<Chunk> Emit(Chunk chunk) {
    emitted_tokens_ += chunk.num_tokens;
    if (swapped_) AppendJoined(&text_, chunk.text);
    if (chunk.done) {
      finished_ = true;
      stop_reason_ = chunk.stop_reason;
    }
    return chunk;
  }

  const HedgedModel* owner_;
  GenerationRequest request_;
  std::unique_ptr<GenerationStream> active_;
  size_t active_replica_;
  size_t next_backup_;
  bool swapped_ = false;        // once true, text_ is authoritative
  std::string text_;
  size_t emitted_tokens_ = 0;
  bool finished_ = false;
  StopReason stop_reason_ = StopReason::kLength;
};

}  // namespace

HedgedModel::HedgedModel(std::shared_ptr<LanguageModel> primary,
                         std::vector<std::shared_ptr<LanguageModel>> backups,
                         const HedgeConfig& config)
    : primary_(std::move(primary)),
      backups_(std::move(backups)),
      config_(config) {
  // Normalise the adaptation bounds so a misconfigured pair cannot invert
  // the clamp; the static percentile starts inside them when adapting.
  if (config_.min_percentile > config_.max_percentile) {
    std::swap(config_.min_percentile, config_.max_percentile);
  }
  config_.min_percentile = std::clamp(config_.min_percentile, 0.0, 1.0);
  config_.max_percentile = std::clamp(config_.max_percentile, 0.0, 1.0);
  effective_percentile_ =
      config_.adapt ? std::clamp(config_.percentile, config_.min_percentile,
                                 config_.max_percentile)
                    : config_.percentile;
  const size_t window = std::max<size_t>(1, config_.latency_window);
  windows_.reserve(replica_count());
  for (size_t i = 0; i < replica_count(); ++i) {
    windows_.emplace_back(window);
  }
}

StatusOr<std::unique_ptr<GenerationStream>> HedgedModel::StartGeneration(
    const GenerationRequest& request) const {
  auto stream_or = primary_->StartGeneration(request);
  if (stream_or.ok()) {
    return std::unique_ptr<GenerationStream>(std::make_unique<HedgedStream>(
        this, std::move(stream_or).value(), 0, request));
  }
  if (!config_.failover_on_error) return stream_or.status();
  // Start-time failover: a refused primary (e.g. its circuit is open) hands
  // the whole generation to the first backup that accepts it.
  Status last = stream_or.status();
  for (size_t i = 1; i < replica_count(); ++i) {
    auto backup_or = replica(i)->StartGeneration(request);
    if (backup_or.ok()) {
      CountHedge(0, 0, 0, 1, 0, 0.0);
      return std::unique_ptr<GenerationStream>(std::make_unique<HedgedStream>(
          this, std::move(backup_or).value(), i, request));
    }
    last = backup_or.status();
  }
  return last;
}

HedgedModel::Stats HedgedModel::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::vector<HedgedModel::ReplicaLatency> HedgedModel::LatencySnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ReplicaLatency> out;
  out.reserve(replica_count());
  for (size_t i = 0; i < replica_count(); ++i) {
    ReplicaLatency entry;
    entry.model = replica(i)->name();
    entry.samples = windows_[i].count();
    if (!windows_[i].empty()) {
      entry.p50 = windows_[i].Quantile(0.50);
      entry.p95 = windows_[i].Quantile(0.95);
    }
    out.push_back(std::move(entry));
  }
  return out;
}

void HedgedModel::RecordLatency(size_t replica, double seconds) const {
  std::lock_guard<std::mutex> lock(mu_);
  windows_[replica].Add(seconds);
}

double HedgedModel::ThresholdFor(size_t replica) const {
  std::lock_guard<std::mutex> lock(mu_);
  const QuantileWindow& window = windows_[replica];
  if (window.size() < std::max<size_t>(1, config_.min_samples)) {
    return std::numeric_limits<double>::infinity();
  }
  return std::max(window.Quantile(effective_percentile_),
                  config_.min_threshold_seconds);
}

std::optional<std::pair<double, double>> HedgedModel::ApplyRewardFavour(
    double favour) const {
  if (!config_.adapt) return std::nullopt;
  favour = std::clamp(favour, 0.0, 1.0);
  std::lock_guard<std::mutex> lock(mu_);
  last_favour_ = favour;
  const double target =
      config_.max_percentile -
      favour * (config_.max_percentile - config_.min_percentile);
  if (target == effective_percentile_) return std::nullopt;
  const double old = effective_percentile_;
  effective_percentile_ = target;
  ++adaptations_;
  return std::make_pair(old, target);
}

double HedgedModel::effective_percentile() const {
  std::lock_guard<std::mutex> lock(mu_);
  return effective_percentile_;
}

size_t HedgedModel::adaptations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return adaptations_;
}

double HedgedModel::last_favour() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_favour_;
}

std::vector<QuantileWindow::Snapshot> HedgedModel::SketchSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<QuantileWindow::Snapshot> out;
  out.reserve(windows_.size());
  for (const auto& window : windows_) out.push_back(window.snapshot());
  return out;
}

void HedgedModel::RestoreSketches(
    const std::vector<QuantileWindow::Snapshot>& sketches) const {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t n = std::min(sketches.size(), windows_.size());
  for (size_t i = 0; i < n; ++i) windows_[i].Restore(sketches[i]);
}

void HedgedModel::CountHedge(size_t launched, size_t won, size_t lost,
                             size_t failovers, size_t wasted_tokens,
                             double wasted_seconds) const {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.hedges_launched += launched;
  stats_.hedges_won += won;
  stats_.hedges_lost += lost;
  stats_.failovers += failovers;
  stats_.wasted_tokens += wasted_tokens;
  stats_.wasted_seconds += wasted_seconds;
}

}  // namespace llmms::llm
