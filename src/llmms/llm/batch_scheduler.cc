#include "llmms/llm/batch_scheduler.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <limits>
#include <set>
#include <tuple>

namespace llmms::llm {
namespace {

// Finished-stream records kept for the fairness index; old entries are
// overwritten ring-style so a long-lived server stays bounded.
constexpr size_t kRetiredCapacity = 1024;

std::string Format(const char* fmt, ...) {
  char buffer[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buffer, sizeof(buffer), fmt, args);
  va_end(args);
  return buffer;
}

}  // namespace

BatchScheduler::BatchScheduler(const SchedulerConfig& config)
    : config_(config) {}

double BatchScheduler::WeightFor(size_t token_budget,
                                 double deadline_slack_seconds) const {
  double weight =
      token_budget > 0 && config_.reference_budget_tokens > 0.0
          ? static_cast<double>(token_budget) / config_.reference_budget_tokens
          : 1.0;
  // Deadline urgency: a stream with little slack left gets a proportional
  // boost so it can finish before its 504, capped so urgent traffic cannot
  // monopolize the replicas.
  if (std::isfinite(deadline_slack_seconds) && deadline_slack_seconds >= 0.0 &&
      config_.urgency_slack_seconds > 0.0 &&
      deadline_slack_seconds < config_.urgency_slack_seconds) {
    const double urgency = config_.urgency_slack_seconds /
                           std::max(deadline_slack_seconds, 1e-3);
    weight *= std::min(urgency, config_.urgency_cap);
  }
  return std::clamp(weight, config_.min_weight, config_.max_weight);
}

BatchScheduler::ModelState* BatchScheduler::ModelOf(const std::string& model) {
  auto it = models_.find(model);
  if (it == models_.end()) {
    ModelState state;
    state.replicas = config_.replicas_per_model;
    auto override_it = config_.replicas.find(model);
    if (override_it != config_.replicas.end() && override_it->second > 0) {
      state.replicas = override_it->second;
    }
    if (state.replicas == 0) state.replicas = 1;
    state.slot_holder.assign(state.replicas, 0);
    state.slot_busy.assign(state.replicas, false);
    state.slot_busy_seconds.assign(state.replicas, 0.0);
    it = models_.emplace(model, std::move(state)).first;
  }
  return &it->second;
}

BatchScheduler::Stream* BatchScheduler::FindLocked(StreamId id) {
  auto it = streams_.find(id);
  return it == streams_.end() ? nullptr : &it->second;
}

void BatchScheduler::TraceLocked(const std::string& line) {
  if (config_.trace_capacity == 0) return;
  if (trace_.size() >= config_.trace_capacity) trace_.pop_front();
  trace_.push_back(line);
}

BatchScheduler::StreamId BatchScheduler::AdmitLocked(
    const AdmitOptions& options, ChunkFn source) {
  Stream stream;
  stream.id = next_id_++;
  stream.model = options.model;
  stream.hedge = options.hedge;
  stream.context = options.context;
  stream.source = std::move(source);
  stream.tokens_per_second = options.tokens_per_second;
  stream.admit_seq = ++admit_seq_;
  const double slack = options.context != nullptr
                           ? options.context->remaining_seconds()
                           : std::numeric_limits<double>::infinity();
  stream.weight =
      options.weight > 0.0
          ? std::clamp(options.weight, config_.min_weight, config_.max_weight)
          : WeightFor(options.token_budget, slack);
  // SFQ start tag: join at the model's virtual clock so a newcomer neither
  // starves incumbents (it cannot replay their past) nor waits behind the
  // service they already consumed.
  stream.virtual_time = ModelOf(options.model)->virtual_clock;
  ++admitted_total_;
  if (stream.hedge) ++hedge_admitted_total_;
  TraceLocked(Format("admit s=%llu model=%s w=%.3f hedge=%d vt=%.3f",
                     static_cast<unsigned long long>(stream.id),
                     stream.model.c_str(), stream.weight,
                     stream.hedge ? 1 : 0, stream.virtual_time));
  const StreamId id = stream.id;
  streams_.emplace(id, std::move(stream));
  return id;
}

BatchScheduler::StreamId BatchScheduler::Admit(const AdmitOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  return AdmitLocked(options, nullptr);
}

BatchScheduler::StreamId BatchScheduler::AdmitSource(
    const AdmitOptions& options, ChunkFn source) {
  std::lock_guard<std::mutex> lock(mu_);
  return AdmitLocked(options, std::move(source));
}

void BatchScheduler::RetireLocked(Stream* stream) {
  if (stream->finished) return;
  stream->finished = true;
  // A parked ExecuteChunk waiter still holds this stream's pointer: leave
  // the node in place and let the waiter erase it when it wakes and sees
  // `finished` (the map is node-based, so the pointer stays valid).
  const bool parked = stream->waiting;
  ++finished_total_;
  if (retired_.size() < kRetiredCapacity) {
    retired_.push_back({stream->service_tokens, stream->weight});
  } else {
    retired_[retired_next_] = {stream->service_tokens, stream->weight};
    retired_next_ = (retired_next_ + 1) % kRetiredCapacity;
  }
  TraceLocked(Format("finish s=%llu tokens=%zu",
                     static_cast<unsigned long long>(stream->id),
                     stream->service_tokens));
  // A stream still holding a slot (or parked in ExecuteChunk) is erased by
  // that path once it unwinds; erasing it here would dangle its pointer.
  if (!stream->running && !stream->granted && !parked) {
    streams_.erase(stream->id);
  } else {
    cv_.notify_all();  // wake a parked waiter so it can unwind
  }
}

void BatchScheduler::Finish(StreamId id) {
  std::lock_guard<std::mutex> lock(mu_);
  Stream* stream = FindLocked(id);
  if (stream != nullptr) RetireLocked(stream);
}

BatchScheduler::Stream* BatchScheduler::PickLocked(ModelState* state,
                                                   const std::string& model,
                                                   bool sourced) {
  (void)state;
  Stream* best = nullptr;
  for (auto& [id, stream] : streams_) {
    if (stream.model != model || stream.finished || stream.granted ||
        stream.running) {
      continue;
    }
    if (sourced ? stream.source == nullptr : !stream.waiting) continue;
    if (best == nullptr) {
      best = &stream;
      continue;
    }
    // Hedges first, then lowest weighted virtual time, then admission
    // order — a total order, so the pick is deterministic.
    const auto rank = [](const Stream& s) {
      return std::make_tuple(s.hedge ? 0 : 1, s.virtual_time, s.admit_seq);
    };
    if (rank(stream) < rank(*best)) best = &stream;
  }
  return best;
}

void BatchScheduler::GrantSlotLocked(ModelState* state, Stream* stream) {
  size_t slot = state->replicas;  // sentinel: no free slot
  for (size_t i = 0; i < state->replicas; ++i) {
    if (!state->slot_busy[i]) {
      slot = i;
      break;
    }
  }
  if (slot == state->replicas) return;  // caller checks before granting
  const StreamId previous = state->slot_holder[slot];
  if (previous != 0 && previous != stream->id) {
    Stream* evicted = FindLocked(previous);
    if (evicted != nullptr && !evicted->finished) {
      // The previous holder is still runnable but lost its replica to a
      // higher-priority stream: a chunk-boundary preemption. Its partial
      // output lives in its own stream object, untouched.
      ++evicted->preemptions;
      ++preempted_total_;
      TraceLocked(Format("preempt s=%llu slot=%zu by=%llu",
                         static_cast<unsigned long long>(previous), slot,
                         static_cast<unsigned long long>(stream->id)));
    }
  }
  state->slot_holder[slot] = stream->id;
  state->slot_busy[slot] = true;
  state->virtual_clock = std::max(state->virtual_clock, stream->virtual_time);
  stream->slot = slot;
  stream->waiting = false;
  stream->granted = true;
  stream->running = true;
  ++dispatches_;
  // Threaded-mode round epochs: a stream granted twice within one epoch
  // means every other runnable stream had its turn — a new round begins.
  if (std::find(epoch_grants_.begin(), epoch_grants_.end(), stream->id) !=
      epoch_grants_.end()) {
    ++rounds_;
    epoch_grants_.clear();
  }
  epoch_grants_.push_back(stream->id);
  TraceLocked(Format("grant r=%zu s=%llu model=%s slot=%zu", rounds_,
                     static_cast<unsigned long long>(stream->id),
                     stream->model.c_str(), slot));
}

void BatchScheduler::YieldSlotLocked(ModelState* state, Stream* stream,
                                     size_t tokens, double cost_seconds) {
  if (stream->slot < state->replicas) {
    state->slot_busy[stream->slot] = false;
    state->slot_busy_seconds[stream->slot] += cost_seconds;
  }
  stream->granted = false;
  stream->running = false;
  stream->service_tokens += tokens;
  ++stream->chunks;
  total_service_tokens_ += tokens;
  // Weighted virtual time: even a zero-token chunk advances the clock so a
  // stalled stream cannot pin its replica's priority forever.
  stream->virtual_time +=
      static_cast<double>(std::max<size_t>(tokens, 1)) / stream->weight;
  TraceLocked(Format("yield s=%llu tokens=%zu vt=%.3f",
                     static_cast<unsigned long long>(stream->id), tokens,
                     stream->virtual_time));
}

void BatchScheduler::ScheduleLocked(const std::string& model) {
  ModelState* state = ModelOf(model);
  for (;;) {
    bool has_free = false;
    for (size_t i = 0; i < state->replicas; ++i) {
      if (!state->slot_busy[i]) {
        has_free = true;
        break;
      }
    }
    if (!has_free) return;
    Stream* next = PickLocked(state, model, /*sourced=*/false);
    if (next == nullptr) return;
    GrantSlotLocked(state, next);
  }
}

StatusOr<Chunk> BatchScheduler::ExecuteChunk(StreamId id, size_t max_tokens,
                                             const ChunkFn& fn) {
  std::unique_lock<std::mutex> lock(mu_);
  Stream* stream = FindLocked(id);
  if (stream == nullptr || stream->finished) {
    return Status::FailedPrecondition("stream is not admitted");
  }
  if (stream->context != nullptr) {
    Status alive = stream->context->Check();
    if (!alive.ok()) {
      ++expired_total_;
      TraceLocked(Format("expire s=%llu code=%s",
                         static_cast<unsigned long long>(id),
                         StatusCodeToString(alive.code())));
      RetireLocked(stream);
      return alive;
    }
  }
  stream->waiting = true;
  ScheduleLocked(stream->model);
  // Park until granted; wake periodically so a deadline that expires while
  // queued unwinds with its typed status instead of waiting for a slot
  // nobody will use.
  while (!stream->granted) {
    cv_.wait_for(lock, std::chrono::milliseconds(10));
    if (stream->granted) break;
    if (stream->finished) {
      // Retired while queued (owner abandoned the generation): unwind
      // without ever touching a replica.
      stream->waiting = false;
      streams_.erase(id);
      cv_.notify_all();
      return Status::Cancelled("stream retired while queued for a replica");
    }
    if (stream->context != nullptr) {
      Status alive = stream->context->Check();
      if (!alive.ok()) {
        stream->waiting = false;
        ++expired_total_;
        TraceLocked(Format("expire s=%llu code=%s",
                           static_cast<unsigned long long>(id),
                           StatusCodeToString(alive.code())));
        RetireLocked(stream);
        streams_.erase(id);
        cv_.notify_all();
        return alive;
      }
    }
  }
  stream->granted = false;  // consumed the grant; still `running`
  lock.unlock();

  auto chunk_or = fn(max_tokens);

  lock.lock();
  // The map is node-based: the pointer stays valid across the unlock; only
  // this owner thread can erase a running stream.
  const std::string model_name = stream->model;
  ModelState* state = ModelOf(model_name);
  size_t tokens = 0;
  double cost = 0.0;
  if (chunk_or.ok()) {
    tokens = chunk_or->num_tokens;
    cost = chunk_or->extra_seconds;
    if (stream->tokens_per_second > 0.0) {
      cost += static_cast<double>(tokens) / stream->tokens_per_second;
    }
  }
  YieldSlotLocked(state, stream, tokens, cost);
  const bool done =
      !chunk_or.ok() || chunk_or->done || stream->finished;
  if (done) {
    RetireLocked(stream);
    streams_.erase(id);
  }
  ScheduleLocked(model_name);
  cv_.notify_all();
  return chunk_or;
}

BatchScheduler::RoundResult BatchScheduler::RunRound(size_t max_tokens) {
  std::unique_lock<std::mutex> lock(mu_);
  RoundResult result;
  result.round = ++rounds_;
  // Deterministic rounds are explicit: reset the threaded-mode epoch so
  // GrantSlotLocked's repeat-grant heuristic never double-counts a round.
  epoch_grants_.clear();

  // Unwind sourced streams whose request died before this round: typed
  // DeadlineExceeded / Cancelled, never dispatched again.
  std::vector<StreamId> expired;
  for (auto& [id, stream] : streams_) {
    if (stream.source == nullptr || stream.finished ||
        stream.context == nullptr) {
      continue;
    }
    if (!stream.context->Check().ok()) expired.push_back(id);
  }
  std::sort(expired.begin(), expired.end());
  for (StreamId id : expired) {
    Stream* stream = FindLocked(id);
    Status dead = stream->context->Check();
    ++expired_total_;
    TraceLocked(Format("expire s=%llu code=%s",
                       static_cast<unsigned long long>(id),
                       StatusCodeToString(dead.code())));
    RetireLocked(stream);
    result.unwound.emplace_back(id, dead);
  }

  // Dispatch, per model in name order, the highest-priority runnable
  // streams onto free slots.
  std::vector<Stream*> granted;
  std::set<std::string> names;
  for (const auto& [id, stream] : streams_) {
    if (stream.source != nullptr && !stream.finished) {
      names.insert(stream.model);
    }
  }
  for (const auto& name : names) {
    ModelState* state = ModelOf(name);
    for (;;) {
      bool has_free = false;
      for (size_t i = 0; i < state->replicas; ++i) {
        if (!state->slot_busy[i]) {
          has_free = true;
          break;
        }
      }
      if (!has_free) break;
      Stream* next = PickLocked(state, name, /*sourced=*/true);
      if (next == nullptr) break;
      GrantSlotLocked(state, next);
      granted.push_back(next);
    }
  }

  // Run the dispatched chunks in grant order. Sources run outside the lock
  // so they may inspect the scheduler; slots stay marked busy meanwhile.
  for (Stream* stream : granted) {
    const StreamId id = stream->id;
    ChunkFn source = stream->source;
    lock.unlock();
    auto chunk_or = source(max_tokens);
    lock.lock();
    ModelState* state = ModelOf(stream->model);
    if (!chunk_or.ok()) {
      YieldSlotLocked(state, stream, 0, 0.0);
      TraceLocked(Format("expire s=%llu code=%s",
                         static_cast<unsigned long long>(id),
                         StatusCodeToString(chunk_or.status().code())));
      RetireLocked(stream);
      streams_.erase(id);
      result.unwound.emplace_back(id, chunk_or.status());
      continue;
    }
    Chunk chunk = std::move(chunk_or).value();
    double cost = chunk.extra_seconds;
    if (stream->tokens_per_second > 0.0) {
      cost += static_cast<double>(chunk.num_tokens) /
              stream->tokens_per_second;
    }
    Dispatched dispatched;
    dispatched.stream = id;
    dispatched.model = stream->model;
    dispatched.slot = stream->slot;
    dispatched.cost_seconds = cost;
    YieldSlotLocked(state, stream, chunk.num_tokens, cost);
    if (chunk.done || stream->finished) {
      RetireLocked(stream);
      streams_.erase(id);
    }
    dispatched.chunk = std::move(chunk);
    result.max_cost_seconds = std::max(result.max_cost_seconds, cost);
    result.total_cost_seconds += cost;
    result.executed.push_back(std::move(dispatched));
  }
  return result;
}

bool BatchScheduler::HasRunnable() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [id, stream] : streams_) {
    if (stream.source != nullptr && !stream.finished) return true;
  }
  return false;
}

double BatchScheduler::JainLocked() const {
  // Jain's index over weight-normalized service: (Σx)² / (n·Σx²) with
  // x = tokens/weight, over every stream that received service. 1.0 is
  // perfectly fair; 1/n means one stream got everything.
  double sum = 0.0;
  double sum_sq = 0.0;
  size_t n = 0;
  const auto add = [&](size_t tokens, double weight) {
    if (tokens == 0) return;
    const double x = static_cast<double>(tokens) / std::max(weight, 1e-9);
    sum += x;
    sum_sq += x * x;
    ++n;
  };
  for (const auto& [id, stream] : streams_) {
    add(stream.service_tokens, stream.weight);
  }
  for (const auto& retired : retired_) {
    add(retired.service_tokens, retired.weight);
  }
  if (n == 0 || sum_sq <= 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(n) * sum_sq);
}

BatchScheduler::Stats BatchScheduler::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats;
  stats.replicas_per_model = config_.replicas_per_model;
  stats.admitted_total = admitted_total_;
  stats.finished_total = finished_total_;
  stats.hedge_admitted_total = hedge_admitted_total_;
  stats.expired_total = expired_total_;
  stats.dispatches = dispatches_;
  stats.rounds = rounds_;
  stats.preempted_total = preempted_total_;
  stats.total_service_tokens = total_service_tokens_;
  stats.fairness_index = JainLocked();
  std::vector<StreamId> ids;
  ids.reserve(streams_.size());
  for (const auto& [id, stream] : streams_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  for (StreamId id : ids) {
    const auto& stream = streams_.at(id);
    if (stream.finished) continue;
    ++stats.runnable;
    if (stream.waiting) ++stats.waiting;
    if (stream.running) ++stats.running;
    StreamInfo info;
    info.id = stream.id;
    info.model = stream.model;
    info.weight = stream.weight;
    info.hedge = stream.hedge;
    info.virtual_time = stream.virtual_time;
    info.service_tokens = stream.service_tokens;
    info.chunks = stream.chunks;
    info.preemptions = stream.preemptions;
    info.running = stream.running;
    stats.streams.push_back(std::move(info));
  }
  std::vector<std::string> names;
  names.reserve(models_.size());
  for (const auto& [name, state] : models_) names.push_back(name);
  std::sort(names.begin(), names.end());
  for (const auto& name : names) {
    const auto& state = models_.at(name);
    ModelInfo info;
    info.model = name;
    info.replicas = state.replicas;
    info.slot_busy_seconds = state.slot_busy_seconds;
    stats.models.push_back(std::move(info));
  }
  return stats;
}

std::vector<std::string> BatchScheduler::Trace() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {trace_.begin(), trace_.end()};
}

}  // namespace llmms::llm
