#include "llmms/llm/synthetic_model.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "llmms/common/rng.h"
#include "llmms/common/string_util.h"
#include "llmms/tokenizer/word_tokenizer.h"

namespace llmms::llm {
namespace {

// Hedging preambles (verbosity-gated), as word lists to keep token
// accounting exact.
const std::vector<std::vector<std::string>>& HedgePhrases() {
  static const auto* kPhrases = new std::vector<std::vector<std::string>>{
      {"let", "me", "think", "about", "this", "question", "carefully"},
      {"that", "is", "an", "interesting", "question"},
      {"based", "on", "my", "knowledge"},
      {"to", "answer", "this", "properly"},
      {"considering", "the", "available", "information"},
      {"this", "is", "a", "commonly", "asked", "question"},
  };
  return *kPhrases;
}

const std::vector<std::vector<std::string>>& AnswerTemplates() {
  // %A marks where the answer words are spliced in.
  static const auto* kTemplates = new std::vector<std::vector<std::string>>{
      {"%A"},
      {"the", "answer", "is", "%A"},
      {"in", "short", "%A"},
      {"simply", "put", "%A"},
  };
  return *kTemplates;
}

const std::vector<std::string>& FillerWords() {
  static const auto* kWords = new std::vector<std::string>{
      "generally", "overall",  "in",       "practice", "many",
      "people",    "consider", "this",     "topic",    "quite",
      "important", "to",       "understand", "clearly", "indeed",
      "often",     "commonly", "known",    "widely",   "discussed",
      "because",   "it",       "relates",  "closely",  "with",
      "several",   "other",    "ideas",    "and",      "concepts",
  };
  return *kWords;
}

const std::vector<std::string>& UnknownWords() {
  static const auto* kWords = new std::vector<std::string>{
      "i",      "am",    "not",     "entirely", "sure", "about",
      "this",   "one",   "it",      "is",       "hard", "to",
      "say",    "with",  "certainty", "without", "more", "context",
  };
  return *kWords;
}

std::vector<std::string> ContentWords(std::string_view text) {
  static const tokenizer::WordTokenizer::Options kOpts{
      .lowercase = true,
      .strip_punctuation = true,
      .remove_articles = true,
      .remove_stopwords = true,
  };
  static const tokenizer::WordTokenizer kTokenizer(kOpts);
  return kTokenizer.Tokenize(text);
}

std::vector<std::string> AllWords(std::string_view text) {
  static const tokenizer::WordTokenizer kTokenizer;
  return kTokenizer.Tokenize(text);
}

void AppendPhrase(const std::vector<std::string>& phrase,
                  std::vector<std::string>* out) {
  out->insert(out->end(), phrase.begin(), phrase.end());
}

// Fraction of `reference`'s content words that appear in `words`.
double ContentOverlap(const std::unordered_set<std::string>& words,
                      const std::vector<std::string>& reference) {
  if (reference.empty()) return 0.0;
  size_t found = 0;
  for (const auto& w : reference) {
    if (words.count(w) > 0) ++found;
  }
  return static_cast<double>(found) / static_cast<double>(reference.size());
}

// The stream over a pre-planned word sequence.
class SyntheticStream final : public GenerationStream {
 public:
  SyntheticStream(std::vector<std::string> words, StopReason natural_end,
                  size_t max_tokens)
      : words_(std::move(words)),
        natural_end_(natural_end),
        max_tokens_(max_tokens) {}

  StatusOr<Chunk> NextChunk(size_t max_tokens) override {
    if (max_tokens == 0) {
      return Status::InvalidArgument("NextChunk requires max_tokens > 0");
    }
    Chunk chunk;
    if (finished_) {
      chunk.done = true;
      chunk.stop_reason = stop_reason_;
      return chunk;
    }
    size_t budget = max_tokens;
    if (max_tokens_ > 0) {
      budget = std::min(budget, max_tokens_ - emitted_);
    }
    const size_t available = words_.size() - position_;
    const size_t n = std::min(budget, available);
    for (size_t i = 0; i < n; ++i) {
      if (i > 0) chunk.text += ' ';
      chunk.text += words_[position_ + i];
    }
    position_ += n;
    emitted_ += n;
    chunk.num_tokens = n;
    if (!chunk.text.empty()) {
      if (!text_.empty()) text_ += ' ';
      text_ += chunk.text;
    }

    if (position_ >= words_.size()) {
      finished_ = true;
      stop_reason_ = natural_end_;
    } else if (max_tokens_ > 0 && emitted_ >= max_tokens_) {
      finished_ = true;
      stop_reason_ = StopReason::kLength;
    }
    chunk.done = finished_;
    chunk.stop_reason = finished_ ? stop_reason_ : StopReason::kLength;
    return chunk;
  }

  const std::string& text() const override { return text_; }
  size_t tokens_generated() const override { return emitted_; }
  bool finished() const override { return finished_; }
  StopReason stop_reason() const override { return stop_reason_; }

 private:
  std::vector<std::string> words_;
  StopReason natural_end_;
  size_t max_tokens_;
  size_t position_ = 0;
  size_t emitted_ = 0;
  bool finished_ = false;
  StopReason stop_reason_ = StopReason::kLength;
  std::string text_;
};

}  // namespace

SyntheticModel::SyntheticModel(ModelProfile profile,
                               std::shared_ptr<const KnowledgeBase> knowledge)
    : profile_(std::move(profile)), knowledge_(std::move(knowledge)) {}

SyntheticModel::Plan SyntheticModel::BuildPlan(
    const GenerationRequest& request) const {
  Rng rng(profile_.seed ^
          HashBytes(request.prompt.data(), request.prompt.size()) ^
          MixHash64(request.seed + 1));

  Plan plan;
  const QaItem* item =
      knowledge_ ? knowledge_->Lookup(request.prompt) : nullptr;

  if (item == nullptr) {
    // The model has no knowledge of this topic: hedge.
    AppendPhrase(UnknownWords(), &plan.words);
    const auto& filler = FillerWords();
    const int extra = static_cast<int>(
        std::lround(profile_.verbosity * rng.Uniform(4.0, 10.0)));
    for (int i = 0; i < extra; ++i) {
      plan.words.push_back(
          filler[static_cast<size_t>(rng.UniformInt(
              0, static_cast<int64_t>(filler.size()) - 1))]);
    }
    return plan;
  }

  // Effective competence: per-domain skill, jitter, and RAG uplift when the
  // prompt carries grounded context overlapping the golden answer beyond
  // what the bare question provides.
  double competence = profile_.CompetenceFor(item->domain);
  competence += rng.Normal(0.0, 0.05);

  const auto prompt_words_vec = ContentWords(request.prompt);
  const std::unordered_set<std::string> prompt_words(prompt_words_vec.begin(),
                                                     prompt_words_vec.end());
  const auto question_words_vec = ContentWords(item->question);
  const std::unordered_set<std::string> question_words(
      question_words_vec.begin(), question_words_vec.end());
  const auto golden_words = ContentWords(item->golden);
  std::vector<std::string> golden_only;
  for (const auto& w : golden_words) {
    if (question_words.count(w) == 0) golden_only.push_back(w);
  }
  if (!golden_only.empty() &&
      ContentOverlap(prompt_words, golden_only) >= 0.5) {
    competence = std::max(competence, profile_.rag_uplift);
  }
  competence = std::clamp(competence, 0.02, 0.98);

  const bool correct_stance = rng.Bernoulli(competence);

  // Choose the answer text.
  std::string answer_text;
  if (correct_stance) {
    if (!item->correct.empty() && rng.Bernoulli(0.4)) {
      answer_text = item->correct[static_cast<size_t>(rng.UniformInt(
          0, static_cast<int64_t>(item->correct.size()) - 1))];
    } else {
      answer_text = item->golden;
    }
  } else if (!item->incorrect.empty()) {
    answer_text = item->incorrect[static_cast<size_t>(rng.UniformInt(
        0, static_cast<int64_t>(item->incorrect.size()) - 1))];
  } else {
    answer_text = item->golden;  // degenerate item: nothing wrong to say
  }

  // Preamble (hedging) scaled by verbosity. Verbose models burn a
  // meaningful number of tokens before their answer appears — the situation
  // §8.4 identifies as adversarial for early pruning.
  const auto& hedges = HedgePhrases();
  int hedge_count = 0;
  if (profile_.verbosity > 0.2) {
    hedge_count = static_cast<int>(
        std::lround(rng.Uniform(0.0, profile_.verbosity * 2.0)));
  }
  for (int i = 0; i < hedge_count && i < 3; ++i) {
    AppendPhrase(hedges[static_cast<size_t>(rng.UniformInt(
                     0, static_cast<int64_t>(hedges.size()) - 1))],
                 &plan.words);
  }

  // Answer sentence.
  const auto& templates = AnswerTemplates();
  const auto& tmpl = templates[static_cast<size_t>(
      rng.UniformInt(0, static_cast<int64_t>(templates.size()) - 1))];
  for (const auto& word : tmpl) {
    if (word == "%A") {
      for (const auto& w : AllWords(answer_text)) plan.words.push_back(w);
    } else {
      plan.words.push_back(word);
    }
  }

  // Elaboration: verbosity-scaled sentences mixing topic, answer, filler,
  // and distractor vocabulary.
  std::vector<std::string> topic_pool = question_words_vec;
  // The discriminative part of the answer: its content words that the
  // question does not already contain. Repeating these is what creates
  // inter-model agreement among same-stance models (and divergence across
  // stances) at the embedding level.
  std::vector<std::string> answer_pool;
  for (const auto& w : ContentWords(answer_text)) {
    if (question_words.count(w) == 0) answer_pool.push_back(w);
  }
  if (answer_pool.empty()) answer_pool = ContentWords(answer_text);
  std::vector<std::string> distractor_pool;
  for (const auto& wrong : item->incorrect) {
    for (const auto& w : ContentWords(wrong)) {
      if (question_words.count(w) == 0) distractor_pool.push_back(w);
    }
  }
  const auto& filler_pool = FillerWords();

  const int num_sentences = static_cast<int>(
      std::lround(profile_.verbosity * rng.Uniform(2.0, 4.5)));
  for (int s = 0; s < num_sentences; ++s) {
    const int length = static_cast<int>(rng.UniformInt(7, 13));
    for (int w = 0; w < length; ++w) {
      // Pool weights: competent models stay on topic; weak or hallucinating
      // ones drift toward distractor vocabulary.
      // A model committed to a misconception elaborates the misconception:
      // wrong-stance responses draw heavily on the distractor vocabulary,
      // which is what lets the scorers (and Eq. 8.1) separate them.
      double distractor_w =
          (1.0 - competence) * 0.4 + profile_.hallucination_rate +
          (correct_stance ? 0.0 : 0.6);
      if (distractor_pool.empty()) distractor_w = 0.0;
      const double topic_w = topic_pool.empty() ? 0.0 : 0.20 + 0.25 * competence;
      const double answer_w = answer_pool.empty() ? 0.0 : 0.55;
      const double filler_w = 0.15;
      const size_t pool = rng.WeightedIndex(
          {topic_w, answer_w, filler_w, distractor_w});
      const std::vector<std::string>* source = nullptr;
      switch (pool) {
        case 0:
          source = &topic_pool;
          break;
        case 1:
          source = &answer_pool;
          break;
        case 2:
          source = &filler_pool;
          break;
        default:
          source = &distractor_pool;
          break;
      }
      if (source->empty()) source = &filler_pool;
      plan.words.push_back((*source)[static_cast<size_t>(rng.UniformInt(
          0, static_cast<int64_t>(source->size()) - 1))]);
    }
  }
  return plan;
}

StatusOr<std::unique_ptr<GenerationStream>> SyntheticModel::StartGeneration(
    const GenerationRequest& request) const {
  if (request.prompt.empty()) {
    return Status::InvalidArgument("prompt must not be empty");
  }
  Plan plan = BuildPlan(request);
  return std::unique_ptr<GenerationStream>(std::make_unique<SyntheticStream>(
      std::move(plan.words), plan.natural_end, request.max_tokens));
}

SyntheticModel::StancePreview SyntheticModel::PreviewStance(
    const std::string& prompt, uint64_t request_seed) const {
  // Replays the stance portion of BuildPlan with the identical RNG sequence.
  StancePreview preview;
  Rng rng(profile_.seed ^ HashBytes(prompt.data(), prompt.size()) ^
          MixHash64(request_seed + 1));
  const QaItem* item = knowledge_ ? knowledge_->Lookup(prompt) : nullptr;
  if (item == nullptr) return preview;
  preview.has_knowledge = true;

  double competence = profile_.CompetenceFor(item->domain);
  competence += rng.Normal(0.0, 0.05);

  const auto prompt_words_vec = ContentWords(prompt);
  const std::unordered_set<std::string> prompt_words(prompt_words_vec.begin(),
                                                     prompt_words_vec.end());
  const auto question_words_vec = ContentWords(item->question);
  const std::unordered_set<std::string> question_words(
      question_words_vec.begin(), question_words_vec.end());
  std::vector<std::string> golden_only;
  for (const auto& w : ContentWords(item->golden)) {
    if (question_words.count(w) == 0) golden_only.push_back(w);
  }
  if (!golden_only.empty() &&
      ContentOverlap(prompt_words, golden_only) >= 0.5) {
    competence = std::max(competence, profile_.rag_uplift);
  }
  competence = std::clamp(competence, 0.02, 0.98);
  preview.effective_competence = competence;
  preview.correct = rng.Bernoulli(competence);
  return preview;
}

}  // namespace llmms::llm
