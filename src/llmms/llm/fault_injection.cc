#include "llmms/llm/fault_injection.h"

#include <utility>

namespace llmms::llm {
namespace {

class FaultyStream final : public GenerationStream {
 public:
  FaultyStream(std::unique_ptr<GenerationStream> inner,
               const FaultConfig& config, Rng rng, const FaultyModel* owner)
      : inner_(std::move(inner)), config_(config), rng_(rng), owner_(owner) {}

  StatusOr<Chunk> NextChunk(size_t max_tokens) override {
    if (truncated_) {
      Chunk chunk;
      chunk.done = true;
      chunk.stop_reason = StopReason::kLength;
      return chunk;
    }
    if (dead_ || (config_.fail_after_tokens > 0 &&
                  inner_->tokens_generated() >= config_.fail_after_tokens)) {
      dead_ = true;  // permanent: retries cannot resurrect the backend
      return Status::Internal("injected fault: model '" + owner_->name() +
                              "' stream died after " +
                              std::to_string(inner_->tokens_generated()) +
                              " tokens");
    }
    if (rng_.Bernoulli(config_.chunk_error_prob)) {
      owner_->CountFault(
          [](FaultyModel::Counters* c) { ++c->chunk_errors_injected; });
      return Status::Internal("injected fault: transient chunk error on '" +
                              owner_->name() + "'");
    }
    if (!inner_->finished() && rng_.Bernoulli(config_.stall_prob)) {
      owner_->CountFault(
          [](FaultyModel::Counters* c) { ++c->stalls_injected; });
      Chunk chunk;  // zero tokens, not done: no progress this call
      return chunk;
    }
    LLMMS_ASSIGN_OR_RETURN(Chunk chunk, inner_->NextChunk(max_tokens));
    if (config_.truncate_after_tokens > 0 && !chunk.done &&
        inner_->tokens_generated() >= config_.truncate_after_tokens) {
      owner_->CountFault(
          [](FaultyModel::Counters* c) { ++c->truncations_injected; });
      truncated_ = true;
      chunk.done = true;
      chunk.stop_reason = StopReason::kLength;
    }
    if (rng_.Bernoulli(config_.latency_spike_prob)) {
      owner_->CountFault(
          [](FaultyModel::Counters* c) { ++c->latency_spikes_injected; });
      chunk.extra_seconds += config_.latency_spike_seconds;
    }
    return chunk;
  }

  const std::string& text() const override { return inner_->text(); }
  size_t tokens_generated() const override {
    return inner_->tokens_generated();
  }
  bool finished() const override { return truncated_ || inner_->finished(); }
  StopReason stop_reason() const override {
    return truncated_ ? StopReason::kLength : inner_->stop_reason();
  }

 private:
  std::unique_ptr<GenerationStream> inner_;
  FaultConfig config_;
  Rng rng_;
  const FaultyModel* owner_;
  bool dead_ = false;
  bool truncated_ = false;
};

}  // namespace

FaultyModel::FaultyModel(std::shared_ptr<LanguageModel> inner,
                         const FaultConfig& config)
    : inner_(std::move(inner)), config_(config), rng_(config.seed) {}

StatusOr<std::unique_ptr<GenerationStream>> FaultyModel::StartGeneration(
    const GenerationRequest& request) const {
  Rng stream_rng;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.starts_attempted;
    if (rng_.Bernoulli(config_.refuse_start_prob)) {
      ++counters_.starts_refused;
      return Status::Internal("injected fault: model '" + name() +
                              "' refused to start generation");
    }
    stream_rng = rng_.Fork();
  }
  LLMMS_ASSIGN_OR_RETURN(auto stream, inner_->StartGeneration(request));
  return std::unique_ptr<GenerationStream>(std::make_unique<FaultyStream>(
      std::move(stream), config_, stream_rng, this));
}

void FaultyModel::CountFault(void (*update)(Counters*)) const {
  std::lock_guard<std::mutex> lock(mu_);
  update(&counters_);
}

FaultyModel::Counters FaultyModel::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

}  // namespace llmms::llm
