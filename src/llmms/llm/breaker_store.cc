#include "llmms/llm/breaker_store.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

namespace llmms::llm {
namespace {

Json TransitionToJson(const CircuitBreaker::Transition& transition) {
  Json out = Json::MakeObject();
  out.Set("from", CircuitStateToString(transition.from));
  out.Set("to", CircuitStateToString(transition.to));
  out.Set("at_call", static_cast<size_t>(transition.at_call));
  return out;
}

CircuitBreaker::State StateFromString(const std::string& name) {
  if (name == "open") return CircuitBreaker::State::kOpen;
  if (name == "half-open") return CircuitBreaker::State::kHalfOpen;
  return CircuitBreaker::State::kClosed;
}

}  // namespace

Json BreakerStore::SnapshotToJson(const CircuitBreaker::Snapshot& snapshot) {
  Json out = Json::MakeObject();
  out.Set("state", CircuitStateToString(snapshot.state));
  out.Set("consecutive_failures", snapshot.consecutive_failures);
  out.Set("total_failures", snapshot.total_failures);
  out.Set("fast_rejections", snapshot.fast_rejections);
  out.Set("rejections_since_open", snapshot.rejections_since_open);
  out.Set("probe_successes", snapshot.probe_successes);
  out.Set("call_clock", static_cast<size_t>(snapshot.call_clock));
  Json history = Json::MakeArray();
  for (const auto& transition : snapshot.history) {
    history.Append(TransitionToJson(transition));
  }
  out.Set("history", std::move(history));
  return out;
}

CircuitBreaker::Snapshot BreakerStore::SnapshotFromJson(const Json& json) {
  CircuitBreaker::Snapshot out;
  out.state = StateFromString(json["state"].AsString());
  out.consecutive_failures =
      static_cast<size_t>(json["consecutive_failures"].AsInt());
  out.total_failures = static_cast<size_t>(json["total_failures"].AsInt());
  out.fast_rejections = static_cast<size_t>(json["fast_rejections"].AsInt());
  out.rejections_since_open =
      static_cast<size_t>(json["rejections_since_open"].AsInt());
  out.probe_successes = static_cast<size_t>(json["probe_successes"].AsInt());
  out.call_clock = static_cast<uint64_t>(json["call_clock"].AsInt());
  if (json["history"].is_array()) {
    for (const Json& entry : json["history"].AsArray()) {
      CircuitBreaker::Transition transition;
      transition.from = StateFromString(entry["from"].AsString());
      transition.to = StateFromString(entry["to"].AsString());
      transition.at_call = static_cast<uint64_t>(entry["at_call"].AsInt());
      out.history.push_back(transition);
    }
  }
  return out;
}

BreakerStore::BreakerStore(std::string path) : path_(std::move(path)) {}

Status BreakerStore::Load() {
  std::ifstream in(path_);
  if (!in.is_open()) return Status::OK();  // first run: nothing saved yet
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  if (text.empty()) return Status::OK();
  auto parsed = Json::Parse(text);
  if (!parsed.ok()) {
    return Status::IOError("breaker store '" + path_ +
                           "' is not valid JSON: " +
                           parsed.status().message());
  }
  if (!parsed.value().is_object()) {
    return Status::IOError("breaker store '" + path_ +
                           "' must be a JSON object keyed by model name");
  }
  std::lock_guard<std::mutex> lock(mu_);
  snapshots_.clear();
  for (const auto& [model, snapshot] : parsed.value().AsObject()) {
    snapshots_[model] = SnapshotFromJson(snapshot);
  }
  return Status::OK();
}

void BreakerStore::Attach(const std::string& model, CircuitBreaker* breaker) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = snapshots_.find(model);
    if (it != snapshots_.end()) breaker->Restore(it->second);
  }
  breaker->SetTransitionListener(
      [this, model](const CircuitBreaker::Snapshot& snapshot) {
        Update(model, snapshot);
      });
}

void BreakerStore::Update(const std::string& model,
                          const CircuitBreaker::Snapshot& snapshot) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshots_[model] = snapshot;
  }
  // Persistence is best-effort on the transition path: a full disk must not
  // fail a generation. SaveNow() reports errors for explicit callers.
  (void)SaveNow();
}

Status BreakerStore::SaveNow() {
  Json doc = Json::MakeObject();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [model, snapshot] : snapshots_) {
      doc.Set(model, SnapshotToJson(snapshot));
    }
  }
  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out.is_open()) {
      return Status::IOError("cannot write breaker store temp file '" + tmp +
                             "'");
    }
    out << doc.Dump(2) << '\n';
    if (!out.good()) {
      return Status::IOError("short write to breaker store temp file '" +
                             tmp + "'");
    }
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    return Status::IOError("cannot rename '" + tmp + "' over '" + path_ +
                           "'");
  }
  return Status::OK();
}

bool BreakerStore::Has(const std::string& model) const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshots_.find(model) != snapshots_.end();
}

}  // namespace llmms::llm
