#include "llmms/llm/state_store.h"

#include <utility>

#include "llmms/llm/hedged_model.h"

namespace llmms::llm {
namespace {

Json TransitionToJson(const CircuitBreaker::Transition& transition) {
  Json out = Json::MakeObject();
  out.Set("from", CircuitStateToString(transition.from));
  out.Set("to", CircuitStateToString(transition.to));
  out.Set("at_call", static_cast<size_t>(transition.at_call));
  return out;
}

CircuitBreaker::State StateFromString(const std::string& name) {
  if (name == "open") return CircuitBreaker::State::kOpen;
  if (name == "half-open") return CircuitBreaker::State::kHalfOpen;
  return CircuitBreaker::State::kClosed;
}

}  // namespace

Json StateStore::BreakerToJson(const CircuitBreaker::Snapshot& snapshot) {
  Json out = Json::MakeObject();
  out.Set("state", CircuitStateToString(snapshot.state));
  out.Set("consecutive_failures", snapshot.consecutive_failures);
  out.Set("total_failures", snapshot.total_failures);
  out.Set("fast_rejections", snapshot.fast_rejections);
  out.Set("rejections_since_open", snapshot.rejections_since_open);
  out.Set("probe_successes", snapshot.probe_successes);
  out.Set("call_clock", static_cast<size_t>(snapshot.call_clock));
  Json history = Json::MakeArray();
  for (const auto& transition : snapshot.history) {
    history.Append(TransitionToJson(transition));
  }
  out.Set("history", std::move(history));
  return out;
}

CircuitBreaker::Snapshot StateStore::BreakerFromJson(const Json& json) {
  CircuitBreaker::Snapshot out;
  out.state = StateFromString(json["state"].AsString());
  out.consecutive_failures =
      static_cast<size_t>(json["consecutive_failures"].AsInt());
  out.total_failures = static_cast<size_t>(json["total_failures"].AsInt());
  out.fast_rejections = static_cast<size_t>(json["fast_rejections"].AsInt());
  out.rejections_since_open =
      static_cast<size_t>(json["rejections_since_open"].AsInt());
  out.probe_successes = static_cast<size_t>(json["probe_successes"].AsInt());
  out.call_clock = static_cast<uint64_t>(json["call_clock"].AsInt());
  if (json["history"].is_array()) {
    for (const Json& entry : json["history"].AsArray()) {
      CircuitBreaker::Transition transition;
      transition.from = StateFromString(entry["from"].AsString());
      transition.to = StateFromString(entry["to"].AsString());
      transition.at_call = static_cast<uint64_t>(entry["at_call"].AsInt());
      out.history.push_back(transition);
    }
  }
  return out;
}

Json StateStore::SketchesToJson(
    const std::vector<QuantileWindow::Snapshot>& sketches) {
  Json out = Json::MakeArray();
  for (const auto& sketch : sketches) {
    Json entry = Json::MakeObject();
    entry.Set("capacity", sketch.capacity);
    entry.Set("count", sketch.count);
    Json samples = Json::MakeArray();
    for (double value : sketch.samples) samples.Append(value);
    entry.Set("samples", std::move(samples));
    out.Append(std::move(entry));
  }
  return out;
}

std::vector<QuantileWindow::Snapshot> StateStore::SketchesFromJson(
    const Json& json) {
  std::vector<QuantileWindow::Snapshot> out;
  if (!json.is_array()) return out;
  for (const Json& entry : json.AsArray()) {
    QuantileWindow::Snapshot sketch;
    sketch.capacity = static_cast<size_t>(entry["capacity"].AsInt());
    sketch.count = static_cast<size_t>(entry["count"].AsInt());
    if (entry["samples"].is_array()) {
      for (const Json& value : entry["samples"].AsArray()) {
        sketch.samples.push_back(value.AsDouble());
      }
    }
    out.push_back(std::move(sketch));
  }
  return out;
}

StateStore::StateStore(std::string path, FileSystem* fs)
    : path_(std::move(path)),
      fs_(fs != nullptr ? fs : FileSystem::Default()) {}

Status StateStore::Load() {
  load_warning_.clear();
  auto text_or = fs_->ReadFile(path_);
  if (!text_or.ok()) {
    // First run: nothing saved yet. Anything else (the path is a directory,
    // a permission problem) is a real I/O surprise and surfaces.
    if (text_or.status().IsNotFound()) return Status::OK();
    return text_or.status();
  }
  const std::string text = std::move(*text_or);
  if (text.empty()) return Status::OK();

  // Corruption policy: parse the whole file *before* committing anything.
  // Truncated or garbage state cold-starts the node — never a crash, never
  // a half-restore — and the reason is kept for the operator.
  auto cold_start = [this](const std::string& why) {
    load_warning_ = "state store '" + path_ + "' " + why +
                    "; cold-starting with empty state";
    GlobalStorageCounters().state_cold_starts.fetch_add(
        1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mu_);
    breakers_.clear();
    sketches_.clear();
    sections_.clear();
    return Status::OK();
  };

  auto parsed = Json::Parse(text);
  if (!parsed.ok()) {
    return cold_start("is not valid JSON (" + parsed.status().message() + ")");
  }
  const Json& doc = parsed.value();
  if (!doc.is_object()) {
    return cold_start("must be a JSON object");
  }

  std::map<std::string, CircuitBreaker::Snapshot> breakers;
  std::map<std::string, std::vector<QuantileWindow::Snapshot>> sketches;
  std::map<std::string, Json> sections;
  if (doc.Contains("breakers") || doc.Contains("sketches") ||
      doc.Contains("rewards")) {
    // Every top-level key beyond the two built-ins is an attached section
    // (e.g. "rewards"); kept verbatim for LoadedSection() and carried
    // through future saves.
    for (const auto& [name, value] : doc.AsObject()) {
      if (name == "breakers" || name == "sketches") continue;
      sections[name] = value;
    }
    if (doc.Contains("breakers")) {
      if (!doc["breakers"].is_object()) {
        return cold_start("has a non-object 'breakers' section");
      }
      for (const auto& [model, snapshot] : doc["breakers"].AsObject()) {
        breakers[model] = BreakerFromJson(snapshot);
      }
    }
    if (doc.Contains("sketches")) {
      if (!doc["sketches"].is_object()) {
        return cold_start("has a non-object 'sketches' section");
      }
      for (const auto& [model, sketch] : doc["sketches"].AsObject()) {
        sketches[model] = SketchesFromJson(sketch);
      }
    }
  } else {
    // Legacy BreakerStore layout: model -> breaker snapshot at top level.
    for (const auto& [model, snapshot] : doc.AsObject()) {
      if (!snapshot.is_object()) {
        return cold_start("is neither the current nor the legacy layout");
      }
      breakers[model] = BreakerFromJson(snapshot);
    }
  }

  std::lock_guard<std::mutex> lock(mu_);
  breakers_ = std::move(breakers);
  sketches_ = std::move(sketches);
  sections_ = std::move(sections);
  return Status::OK();
}

void StateStore::AttachSection(const std::string& name,
                               std::function<Json()> provider) {
  std::lock_guard<std::mutex> lock(mu_);
  providers_[name] = std::move(provider);
}

Json StateStore::LoadedSection(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sections_.find(name);
  return it == sections_.end() ? Json() : it->second;
}

void StateStore::AttachBreaker(const std::string& model,
                               CircuitBreaker* breaker) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = breakers_.find(model);
    if (it != breakers_.end()) breaker->Restore(it->second);
  }
  breaker->SetTransitionListener(
      [this, model](const CircuitBreaker::Snapshot& snapshot) {
        UpdateBreaker(model, snapshot);
      });
}

void StateStore::AttachSketches(const std::string& model,
                                std::shared_ptr<const HedgedModel> hedged) {
  std::vector<QuantileWindow::Snapshot> saved;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sketches_.find(model);
    if (it != sketches_.end()) saved = it->second;
    hedged_[model] = hedged;
  }
  // Restoring outside the store lock: RestoreSketches takes the model's own
  // lock, and a model method must never run under ours (same discipline as
  // the breaker transition listener).
  if (!saved.empty()) hedged->RestoreSketches(saved);
}

void StateStore::UpdateBreaker(const std::string& model,
                               const CircuitBreaker::Snapshot& snapshot) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    breakers_[model] = snapshot;
  }
  // Persistence is best-effort on the transition path: a full disk must not
  // fail a generation. SaveNow() reports errors for explicit callers.
  (void)SaveNow();
}

Status StateStore::SaveNow() {
  // Snapshot the live groups outside the store lock (SketchSnapshot takes
  // each model's own lock; model methods never run under ours).
  std::map<std::string, std::shared_ptr<const HedgedModel>> live;
  {
    std::lock_guard<std::mutex> lock(mu_);
    live = hedged_;
  }
  std::map<std::string, std::vector<QuantileWindow::Snapshot>> fresh;
  for (const auto& [model, hedged] : live) {
    fresh[model] = hedged->SketchSnapshot();
  }
  // Section providers likewise run outside the store lock (they may take
  // their owner's own lock, e.g. the reward feed's).
  std::map<std::string, std::function<Json()>> providers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    providers = providers_;
  }
  std::map<std::string, Json> fresh_sections;
  for (const auto& [name, provider] : providers) {
    fresh_sections[name] = provider();
  }

  Json breakers = Json::MakeObject();
  Json sketches = Json::MakeObject();
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Refresh the saved sketches from the live snapshots, so the file
    // always carries the newest windows (and a model detached later keeps
    // its last snapshot).
    for (auto& [model, sketch] : fresh) {
      sketches_[model] = std::move(sketch);
    }
    for (auto& [name, section] : fresh_sections) {
      sections_[name] = std::move(section);
    }
    for (const auto& [model, snapshot] : breakers_) {
      breakers.Set(model, BreakerToJson(snapshot));
    }
    for (const auto& [model, sketch] : sketches_) {
      sketches.Set(model, SketchesToJson(sketch));
    }
  }
  Json doc = Json::MakeObject();
  doc.Set("breakers", std::move(breakers));
  doc.Set("sketches", std::move(sketches));
  {
    // Loaded-but-unattached sections ride along unchanged.
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, section] : sections_) {
      doc.Set(name, section);
    }
  }

  auto& counters = GlobalStorageCounters();
  // Full barrier sequence (write path.tmp, fsync, rename, fsync the parent
  // directory): a crash between the temp write and the rename — or at any
  // other point — leaves the previous snapshot readable.
  Status status = AtomicWriteFile(fs_, path_, doc.Dump(2) + "\n");
  if (!status.ok()) {
    counters.state_save_failures.fetch_add(1, std::memory_order_relaxed);
    if (status.IsNotFound()) return Status::IOError(status.message());
    return status;
  }
  counters.state_saves.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

bool StateStore::HasBreaker(const std::string& model) const {
  std::lock_guard<std::mutex> lock(mu_);
  return breakers_.find(model) != breakers_.end();
}

bool StateStore::HasSketches(const std::string& model) const {
  std::lock_guard<std::mutex> lock(mu_);
  return sketches_.find(model) != sketches_.end();
}

}  // namespace llmms::llm
