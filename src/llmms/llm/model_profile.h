#ifndef LLMMS_LLM_MODEL_PROFILE_H_
#define LLMMS_LLM_MODEL_PROFILE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace llmms::llm {

// Statistical profile of a synthetic model. The profile is the knob that
// makes the substrate behave like a fleet of heterogeneous real models:
// per-domain competence differs across models (the paper's central premise
// that "no single model offers consistent superiority across all domains"),
// and verbosity/hallucination/speed differ the way 7-8B chat models differ.
struct ModelProfile {
  std::string name;    // registry name, e.g. "llama3:8b"
  std::string family;  // e.g. "llama"
  double parameters_b = 7.0;
  uint64_t memory_mb = 4800;       // quantized GGUF footprint
  double tokens_per_second = 80.0; // decode speed on the reference GPU
  size_t context_window = 8192;

  // Probability of taking a correct stance on a question of each domain.
  std::map<std::string, double> domain_competence;
  double default_competence = 0.55;

  // Verbosity >= 0: scales hedging preamble and elaboration length.
  double verbosity = 1.0;

  // Probability of injecting misleading distractor phrases even when the
  // stance is correct (dilutes similarity signals; stresses the scorers).
  double hallucination_rate = 0.05;

  // How much grounded context in the prompt lifts effective competence
  // (the RAG benefit): c' = max(c, rag_uplift) when the prompt carries
  // text overlapping the reference answer.
  double rag_uplift = 0.9;

  // Base seed for this model's deterministic sampling.
  uint64_t seed = 0x51a7e5ULL;

  // Competence for `domain`, falling back to default_competence.
  double CompetenceFor(const std::string& domain) const;
};

// The canonical question domains used by the synthetic world.
const std::vector<std::string>& CanonicalDomains();

// The three models evaluated in the paper (§8.1), with complementary
// strengths: LLaMA-3-8B (science/history, chatty), Mistral-7B
// (math/geography, terse and fast), Qwen-2-7B (language/logic,
// knowledge-intensive).
std::vector<ModelProfile> DefaultProfiles();

}  // namespace llmms::llm

#endif  // LLMMS_LLM_MODEL_PROFILE_H_
