#include "llmms/llm/model_card.h"

#include "llmms/common/json.h"

namespace llmms::llm {

std::string ProfileToJson(const ModelProfile& profile) {
  Json card = Json::MakeObject();
  card.Set("schema", "llmms-model-card-v1");
  card.Set("name", profile.name);
  card.Set("family", profile.family);
  card.Set("parameters_b", profile.parameters_b);
  card.Set("memory_mb", profile.memory_mb);
  card.Set("tokens_per_second", profile.tokens_per_second);
  card.Set("context_window", profile.context_window);
  Json competence = Json::MakeObject();
  for (const auto& [domain, value] : profile.domain_competence) {
    competence.Set(domain, value);
  }
  card.Set("domain_competence", std::move(competence));
  card.Set("default_competence", profile.default_competence);
  card.Set("verbosity", profile.verbosity);
  card.Set("hallucination_rate", profile.hallucination_rate);
  card.Set("rag_uplift", profile.rag_uplift);
  card.Set("seed", static_cast<int64_t>(profile.seed));
  return card.Dump(2);
}

StatusOr<ModelProfile> ProfileFromJson(const std::string& text) {
  LLMMS_ASSIGN_OR_RETURN(Json card, Json::Parse(text));
  if (card["schema"].AsString() != "llmms-model-card-v1") {
    return Status::InvalidArgument("not a llmms-model-card-v1 document");
  }
  ModelProfile profile;
  profile.name = card["name"].AsString();
  if (profile.name.empty()) {
    return Status::InvalidArgument("model card missing 'name'");
  }
  profile.family = card["family"].AsString();
  profile.parameters_b = card["parameters_b"].AsDouble();
  profile.memory_mb = static_cast<uint64_t>(card["memory_mb"].AsInt());
  profile.tokens_per_second = card["tokens_per_second"].AsDouble();
  if (profile.tokens_per_second <= 0.0) {
    return Status::InvalidArgument("'tokens_per_second' must be positive");
  }
  profile.context_window =
      static_cast<size_t>(card["context_window"].AsInt());
  for (const auto& [domain, value] :
       card["domain_competence"].AsObject()) {
    profile.domain_competence[domain] = value.AsDouble();
  }
  profile.default_competence = card["default_competence"].AsDouble();
  profile.verbosity = card["verbosity"].AsDouble();
  profile.hallucination_rate = card["hallucination_rate"].AsDouble();
  profile.rag_uplift = card["rag_uplift"].AsDouble();
  profile.seed = static_cast<uint64_t>(card["seed"].AsInt());
  return profile;
}

Status SaveModelCard(const ModelProfile& profile, const std::string& path,
                     FileSystem* fs) {
  if (fs == nullptr) fs = FileSystem::Default();
  Status status = AtomicWriteFile(fs, path, ProfileToJson(profile) + "\n");
  if (status.IsNotFound()) {
    // A missing parent directory surfaces as NotFound from open(); this API
    // reports every save failure uniformly as IOError.
    return Status::IOError(status.message());
  }
  return status;
}

StatusOr<ModelProfile> LoadModelCard(const std::string& path,
                                     FileSystem* fs) {
  if (fs == nullptr) fs = FileSystem::Default();
  auto contents = fs->ReadFile(path);
  if (!contents.ok()) {
    return Status::IOError("cannot open for read: " + path);
  }
  return ProfileFromJson(*contents);
}

StatusOr<std::vector<std::string>> WriteDefaultModelCards(
    const std::string& directory, FileSystem* fs) {
  std::vector<std::string> paths;
  for (const auto& profile : DefaultProfiles()) {
    std::string filename = profile.name;
    for (char& c : filename) {
      if (c == ':' || c == '/') c = '-';
    }
    const std::string path = directory + "/" + filename + ".json";
    LLMMS_RETURN_NOT_OK(SaveModelCard(profile, path, fs));
    paths.push_back(path);
  }
  return paths;
}

}  // namespace llmms::llm
