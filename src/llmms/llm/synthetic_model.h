#ifndef LLMMS_LLM_SYNTHETIC_MODEL_H_
#define LLMMS_LLM_SYNTHETIC_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "llmms/llm/knowledge.h"
#include "llmms/llm/model.h"
#include "llmms/llm/model_profile.h"

namespace llmms::llm {

// A statistical stand-in for a quantized 7-8B chat model.
//
// Given a prompt, the model resolves it against the shared KnowledgeBase,
// draws a correct/incorrect stance from its per-domain competence, and plans
// a deterministic token stream: hedging preamble, an answer sentence built
// from a golden/correct or plausible-but-wrong reference answer, and
// verbosity-scaled elaboration that mixes topic words, answer words, filler,
// and (for weak stances and hallucinations) distractor words from the
// incorrect answers.
//
// These mechanics induce exactly the signal structure the orchestration
// algorithms consume: responses from competent models embed closer to the
// query; models taking the same (usually correct) stance agree with each
// other; verbose models pay more tokens for the same content. Everything is
// deterministic in (profile.seed, prompt, request.seed).
class SyntheticModel final : public LanguageModel {
 public:
  SyntheticModel(ModelProfile profile,
                 std::shared_ptr<const KnowledgeBase> knowledge);

  const std::string& name() const override { return profile_.name; }
  uint64_t memory_mb() const override { return profile_.memory_mb; }
  double tokens_per_second() const override {
    return profile_.tokens_per_second;
  }
  size_t context_window() const override { return profile_.context_window; }

  StatusOr<std::unique_ptr<GenerationStream>> StartGeneration(
      const GenerationRequest& request) const override;

  const ModelProfile& profile() const { return profile_; }

  // Diagnostics for tests: the stance the model would take for `prompt`
  // (true = correct) and the effective competence after RAG uplift.
  struct StancePreview {
    bool has_knowledge = false;
    bool correct = false;
    double effective_competence = 0.0;
  };
  StancePreview PreviewStance(const std::string& prompt,
                              uint64_t request_seed = 0) const;

 private:
  struct Plan {
    std::vector<std::string> words;
    StopReason natural_end = StopReason::kStop;
  };

  Plan BuildPlan(const GenerationRequest& request) const;

  ModelProfile profile_;
  std::shared_ptr<const KnowledgeBase> knowledge_;
};

}  // namespace llmms::llm

#endif  // LLMMS_LLM_SYNTHETIC_MODEL_H_
