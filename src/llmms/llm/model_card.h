#ifndef LLMMS_LLM_MODEL_CARD_H_
#define LLMMS_LLM_MODEL_CARD_H_

#include <string>
#include <vector>

#include "llmms/common/fs.h"
#include "llmms/common/result.h"
#include "llmms/common/status.h"
#include "llmms/llm/model_profile.h"

namespace llmms::llm {

// On-disk model definitions (§3.3: "Supported models are stored on disk ...
// and managed by Ollama's model server"). A model card is a JSON file
// carrying everything needed to instantiate a SyntheticModel: identity,
// resource footprint, decode speed, and the per-domain competence profile.
// New models become plug-and-play by dropping a card into the model
// directory (§3.6 extensibility).

// Serializes a profile as a pretty-printed JSON model card.
std::string ProfileToJson(const ModelProfile& profile);

// Parses a model card; InvalidArgument on missing/ill-typed fields.
StatusOr<ModelProfile> ProfileFromJson(const std::string& text);

// File round trip. Saves go through the atomic tmp + fsync + rename +
// fsync-dir barrier (common/fs.h), so a crash mid-save leaves the old card
// (or no card) — never a torn one. `fs` defaults to FileSystem::Default().
Status SaveModelCard(const ModelProfile& profile, const std::string& path,
                     FileSystem* fs = nullptr);
StatusOr<ModelProfile> LoadModelCard(const std::string& path,
                                     FileSystem* fs = nullptr);

// Writes one card per default profile into `directory` (created by the
// caller); returns the file paths. Used to bootstrap a model directory.
StatusOr<std::vector<std::string>> WriteDefaultModelCards(
    const std::string& directory, FileSystem* fs = nullptr);

}  // namespace llmms::llm

#endif  // LLMMS_LLM_MODEL_CARD_H_
