#include "llmms/llm/registry.h"

#include <algorithm>

namespace llmms::llm {

Status ModelRegistry::Register(std::shared_ptr<LanguageModel> model) {
  if (model == nullptr) {
    return Status::InvalidArgument("model must not be null");
  }
  std::lock_guard<std::mutex> lock(mu_);
  const std::string& name = model->name();
  if (name.empty()) {
    return Status::InvalidArgument("model name must not be empty");
  }
  if (models_.count(name) > 0) {
    return Status::AlreadyExists("model '" + name + "' already registered");
  }
  models_[name] = std::move(model);
  return Status::OK();
}

Status ModelRegistry::Pull(std::shared_ptr<LanguageModel> model) {
  if (model == nullptr) {
    return Status::InvalidArgument("model must not be null");
  }
  std::lock_guard<std::mutex> lock(mu_);
  const std::string& name = model->name();
  if (name.empty()) {
    return Status::InvalidArgument("model name must not be empty");
  }
  models_[name] = std::move(model);
  return Status::OK();
}

Status ModelRegistry::Remove(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (models_.erase(name) == 0) {
    return Status::NotFound("model '" + name + "' is not registered");
  }
  return Status::OK();
}

StatusOr<std::shared_ptr<LanguageModel>> ModelRegistry::Get(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = models_.find(name);
  if (it == models_.end()) {
    return Status::NotFound("model '" + name + "' is not registered");
  }
  return it->second;
}

bool ModelRegistry::Contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return models_.count(name) > 0;
}

std::vector<std::string> ModelRegistry::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(models_.size());
  for (const auto& [name, model] : models_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

size_t ModelRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return models_.size();
}

}  // namespace llmms::llm
