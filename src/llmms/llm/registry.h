#ifndef LLMMS_LLM_REGISTRY_H_
#define LLMMS_LLM_REGISTRY_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "llmms/common/result.h"
#include "llmms/common/status.h"
#include "llmms/llm/model.h"

namespace llmms::llm {

// The Ollama-registry substitute: the catalog of models the platform can
// serve. New models are plug-and-play — registering a LanguageModel makes
// it available to the runtime and the orchestrators with no other change
// (§3.6 extensibility).
class ModelRegistry {
 public:
  ModelRegistry() = default;

  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  // Adds a model under model->name(); AlreadyExists if taken.
  Status Register(std::shared_ptr<LanguageModel> model);

  // Replaces or adds a model (Ollama `pull` semantics).
  Status Pull(std::shared_ptr<LanguageModel> model);

  Status Remove(const std::string& name);

  StatusOr<std::shared_ptr<LanguageModel>> Get(const std::string& name) const;
  bool Contains(const std::string& name) const;

  // Sorted model names.
  std::vector<std::string> List() const;
  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<LanguageModel>> models_;
};

}  // namespace llmms::llm

#endif  // LLMMS_LLM_REGISTRY_H_
