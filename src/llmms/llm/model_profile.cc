#include "llmms/llm/model_profile.h"

namespace llmms::llm {

double ModelProfile::CompetenceFor(const std::string& domain) const {
  auto it = domain_competence.find(domain);
  return it != domain_competence.end() ? it->second : default_competence;
}

const std::vector<std::string>& CanonicalDomains() {
  static const auto* kDomains = new std::vector<std::string>{
      "science", "history", "math", "geography", "language", "logic",
  };
  return *kDomains;
}

std::vector<ModelProfile> DefaultProfiles() {
  std::vector<ModelProfile> profiles;

  // LLaMA-3-8B: strong general model, best at science and history; the most
  // verbose of the three (fluent, polite conversational style, §2.2).
  ModelProfile llama;
  llama.name = "llama3:8b";
  llama.family = "llama";
  llama.parameters_b = 8.0;
  llama.memory_mb = 5600;
  llama.tokens_per_second = 75.0;
  llama.context_window = 8192;
  llama.domain_competence = {
      {"science", 0.86}, {"history", 0.82}, {"math", 0.48},
      {"geography", 0.60}, {"language", 0.58}, {"logic", 0.55},
  };
  llama.default_competence = 0.60;
  llama.verbosity = 1.5;
  llama.hallucination_rate = 0.06;
  llama.seed = 0xA11A3ULL;
  profiles.push_back(llama);

  // Mistral-7B: efficient and terse; best at math and geography; fastest
  // inference (§8.1: "smaller size ... allows faster inference").
  ModelProfile mistral;
  mistral.name = "mistral:7b";
  mistral.family = "mistral";
  mistral.parameters_b = 7.0;
  mistral.memory_mb = 4400;
  mistral.tokens_per_second = 95.0;
  mistral.context_window = 8192;
  mistral.domain_competence = {
      {"science", 0.58}, {"history", 0.52}, {"math", 0.84},
      {"geography", 0.80}, {"language", 0.55}, {"logic", 0.62},
  };
  mistral.default_competence = 0.58;
  mistral.verbosity = 0.8;
  mistral.hallucination_rate = 0.05;
  mistral.seed = 0x0135714ULL;
  profiles.push_back(mistral);

  // Qwen-2-7B: optimized for multilingual reasoning and knowledge-intensive
  // tasks (§8.1); best at language and logic.
  ModelProfile qwen;
  qwen.name = "qwen2:7b";
  qwen.family = "qwen";
  qwen.parameters_b = 7.0;
  qwen.memory_mb = 4600;
  qwen.tokens_per_second = 85.0;
  qwen.context_window = 32768;
  qwen.domain_competence = {
      {"science", 0.60}, {"history", 0.56}, {"math", 0.62},
      {"geography", 0.58}, {"language", 0.84}, {"logic", 0.82},
  };
  qwen.default_competence = 0.60;
  qwen.verbosity = 1.0;
  qwen.hallucination_rate = 0.05;
  qwen.seed = 0x0E52ULL;
  profiles.push_back(qwen);

  return profiles;
}

}  // namespace llmms::llm
