#include "llmms/session/memory_graph.h"

#include <algorithm>
#include <unordered_set>

#include "llmms/embedding/similarity.h"

namespace llmms::session {

MemoryGraph::MemoryGraph(std::shared_ptr<const embedding::Embedder> embedder,
                         const Options& options)
    : embedder_(std::move(embedder)), options_(options) {}

const MemoryGraph::Entry* MemoryGraph::FindEntry(uint64_t id) const {
  for (const auto& entry : nodes_) {
    if (entry.node.id == id) return &entry;
  }
  return nullptr;
}

void MemoryGraph::Evict() {
  if (nodes_.empty()) return;
  const uint64_t evicted = nodes_.front().node.id;
  nodes_.erase(nodes_.begin());
  for (auto& entry : nodes_) {
    auto& edges = entry.edges;
    edges.erase(std::remove_if(edges.begin(), edges.end(),
                               [evicted](const auto& e) {
                                 return e.first == evicted;
                               }),
                edges.end());
  }
}

StatusOr<uint64_t> MemoryGraph::Add(const std::string& question,
                                    const std::string& answer) {
  if (question.empty()) {
    return Status::InvalidArgument("question must not be empty");
  }
  Entry entry;
  entry.node.id = next_id_++;
  entry.node.question = question;
  entry.node.answer = answer;
  entry.node.sequence = entry.node.id;
  entry.embedding = embedder_->Embed(question + " " + answer);

  // Link against existing nodes.
  for (auto& other : nodes_) {
    const double sim =
        embedding::CosineSimilarity(entry.embedding, other.embedding);
    if (sim < options_.link_threshold) continue;
    entry.edges.emplace_back(other.node.id, sim);
    other.edges.emplace_back(entry.node.id, sim);
    // Keep only the strongest max_degree edges on the other side.
    if (other.edges.size() > options_.max_degree) {
      std::sort(other.edges.begin(), other.edges.end(),
                [](const auto& a, const auto& b) { return a.second > b.second; });
      other.edges.resize(options_.max_degree);
    }
  }
  std::sort(entry.edges.begin(), entry.edges.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  if (entry.edges.size() > options_.max_degree) {
    entry.edges.resize(options_.max_degree);
  }

  const uint64_t id = entry.node.id;
  nodes_.push_back(std::move(entry));
  while (nodes_.size() > options_.capacity) Evict();
  return id;
}

std::vector<MemoryGraph::Recalled> MemoryGraph::Recall(
    const std::string& query, size_t k, double min_similarity) const {
  std::vector<Recalled> out;
  if (nodes_.empty() || k == 0) return out;

  const auto query_embedding = embedder_->Embed(query);
  struct Scored {
    const Entry* entry;
    double similarity;
  };
  std::vector<Scored> scored;
  scored.reserve(nodes_.size());
  for (const auto& entry : nodes_) {
    scored.push_back(Scored{
        &entry,
        embedding::CosineSimilarity(query_embedding, entry.embedding)});
  }
  std::sort(scored.begin(), scored.end(), [](const Scored& a, const Scored& b) {
    if (a.similarity != b.similarity) return a.similarity > b.similarity;
    return a.entry->node.id < b.entry->node.id;
  });

  std::unordered_set<uint64_t> seen;
  // Direct matches first.
  for (const auto& s : scored) {
    if (out.size() >= k) return out;
    if (s.similarity < min_similarity) break;
    if (!seen.insert(s.entry->node.id).second) continue;
    Recalled r;
    r.node = s.entry->node;
    r.similarity = s.similarity;
    out.push_back(std::move(r));
  }
  // Expand with graph neighbors of the direct matches.
  const size_t direct = out.size();
  for (size_t i = 0; i < direct && out.size() < k; ++i) {
    const Entry* entry = FindEntry(out[i].node.id);
    if (entry == nullptr) continue;
    for (const auto& [neighbor_id, edge_sim] : entry->edges) {
      if (out.size() >= k) break;
      if (!seen.insert(neighbor_id).second) continue;
      const Entry* neighbor = FindEntry(neighbor_id);
      if (neighbor == nullptr) continue;
      Recalled r;
      r.node = neighbor->node;
      r.similarity =
          embedding::CosineSimilarity(query_embedding, neighbor->embedding);
      r.via_edge = true;
      out.push_back(std::move(r));
    }
  }
  return out;
}

size_t MemoryGraph::DegreeOf(uint64_t id) const {
  const Entry* entry = FindEntry(id);
  return entry != nullptr ? entry->edges.size() : 0;
}

size_t MemoryGraph::edge_count() const {
  size_t total = 0;
  for (const auto& entry : nodes_) total += entry.edges.size();
  return total;
}

}  // namespace llmms::session
