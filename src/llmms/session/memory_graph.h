#ifndef LLMMS_SESSION_MEMORY_GRAPH_H_
#define LLMMS_SESSION_MEMORY_GRAPH_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "llmms/common/result.h"
#include "llmms/common/status.h"
#include "llmms/embedding/embedder.h"

namespace llmms::session {

// Contextual memory graph (§9.5): rather than only a linear chat log, past
// (question, answer) exchanges become nodes in an in-memory graph, linked
// when their embeddings are similar. Recall for a new query returns the
// closest past exchanges plus their graph neighbors, so the platform can
// pull in *related* history even when it happened many turns ago.
//
// Bounded: when `capacity` is exceeded the oldest node (and its edges) is
// evicted. Not thread-safe; owned per session.
class MemoryGraph {
 public:
  struct Node {
    uint64_t id = 0;
    std::string question;
    std::string answer;
    uint64_t sequence = 0;  // insertion order
  };

  struct Recalled {
    Node node;
    double similarity = 0.0;  // to the query (0 for pure graph neighbors)
    bool via_edge = false;    // reached through a neighbor link
  };

  struct Options {
    size_t capacity = 256;
    // Exchanges with embedding cosine >= this are linked.
    double link_threshold = 0.25;
    // Max edges kept per node (highest-similarity links win).
    size_t max_degree = 6;
  };

  MemoryGraph(std::shared_ptr<const embedding::Embedder> embedder,
              const Options& options);
  explicit MemoryGraph(std::shared_ptr<const embedding::Embedder> embedder)
      : MemoryGraph(std::move(embedder), Options()) {}

  // Adds one exchange; returns its node id.
  StatusOr<uint64_t> Add(const std::string& question,
                         const std::string& answer);

  // Up to `k` most related past exchanges for `query`: the top direct
  // matches above `min_similarity`, expanded with their strongest graph
  // neighbors. Results are unique and ordered by similarity (direct matches
  // first).
  std::vector<Recalled> Recall(const std::string& query, size_t k,
                               double min_similarity = 0.2) const;

  // Degree of a node; 0 for unknown ids.
  size_t DegreeOf(uint64_t id) const;

  size_t size() const { return nodes_.size(); }

  // Directed edge endpoints stored (a fully symmetric link counts twice;
  // degree trimming can make links one-sided).
  size_t edge_count() const;

 private:
  struct Entry {
    Node node;
    embedding::Vector embedding;
    // (neighbor index into nodes_ is unstable under eviction; store ids)
    std::vector<std::pair<uint64_t, double>> edges;  // (node id, similarity)
  };

  const Entry* FindEntry(uint64_t id) const;
  void Evict();

  std::shared_ptr<const embedding::Embedder> embedder_;
  Options options_;
  std::vector<Entry> nodes_;  // insertion order
  uint64_t next_id_ = 1;
};

}  // namespace llmms::session

#endif  // LLMMS_SESSION_MEMORY_GRAPH_H_
