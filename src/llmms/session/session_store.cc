#include "llmms/session/session_store.h"

#include <algorithm>

namespace llmms::session {

StatusOr<std::shared_ptr<Session>> SessionStore::Create(
    const std::string& id) {
  if (id.empty()) {
    return Status::InvalidArgument("session id must not be empty");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (sessions_.count(id) > 0) {
    return Status::AlreadyExists("session '" + id + "' already exists");
  }
  auto session = std::make_shared<Session>(id, defaults_);
  sessions_[id] = session;
  return session;
}

StatusOr<std::shared_ptr<Session>> SessionStore::GetOrCreate(
    const std::string& id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(id);
    if (it != sessions_.end()) return it->second;
  }
  return Create(id);
}

StatusOr<std::shared_ptr<Session>> SessionStore::Get(
    const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Status::NotFound("no session with id '" + id + "'");
  }
  return it->second;
}

Status SessionStore::Remove(const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (sessions_.erase(id) == 0) {
    return Status::NotFound("no session with id '" + id + "'");
  }
  return Status::OK();
}

std::vector<std::string> SessionStore::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> ids;
  ids.reserve(sessions_.size());
  for (const auto& [id, s] : sessions_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

size_t SessionStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

}  // namespace llmms::session
