#include "llmms/session/session.h"

#include <cstddef>

#include "llmms/common/string_util.h"

namespace llmms::session {

const char* RoleToString(Role role) {
  switch (role) {
    case Role::kUser:
      return "user";
    case Role::kAssistant:
      return "assistant";
    case Role::kSystem:
      return "system";
  }
  return "unknown";
}

Session::Session(std::string id, const Options& options)
    : id_(std::move(id)), options_(options), summarizer_(options.summarizer) {}

void Session::Append(Role role, std::string text) {
  std::lock_guard<std::mutex> lock(mu_);
  Message message;
  message.role = role;
  message.text = std::move(text);
  message.sequence = next_sequence_++;
  recent_.push_back(std::move(message));
  FoldOldTurns();
}

void Session::FoldOldTurns() {
  if (recent_.size() <= options_.keep_recent) return;
  // Fold everything beyond the most recent keep_recent turns.
  std::string to_fold = summary_;
  while (recent_.size() > options_.keep_recent) {
    if (!to_fold.empty()) to_fold += " ";
    to_fold +=
        std::string(RoleToString(recent_.front().role)) + " said: " +
        recent_.front().text;
    recent_.pop_front();
  }
  summary_ = summarizer_.Summarize(to_fold);
}

std::string Session::ContextText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string context;
  if (!summary_.empty()) {
    context = "Summary of earlier conversation: " + summary_;
  }
  for (const auto& message : recent_) {
    if (!context.empty()) context += "\n";
    context += std::string(RoleToString(message.role)) + ": " + message.text;
  }
  // Clip to the context budget, keeping the most recent words.
  const auto words = SplitWhitespace(context);
  if (words.size() > options_.max_context_words) {
    std::vector<std::string> kept(
        words.end() - static_cast<ptrdiff_t>(options_.max_context_words),
        words.end());
    context = Join(kept, " ");
  }
  return context;
}

std::vector<Message> Session::RecentMessages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<Message>(recent_.begin(), recent_.end());
}

std::string Session::summary() const {
  std::lock_guard<std::mutex> lock(mu_);
  return summary_;
}

uint64_t Session::message_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_sequence_;
}

void Session::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  recent_.clear();
  summary_.clear();
}

}  // namespace llmms::session
