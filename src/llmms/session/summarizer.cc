#include "llmms/session/summarizer.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "llmms/common/string_util.h"
#include "llmms/tokenizer/word_tokenizer.h"

namespace llmms::session {

std::string Summarizer::Summarize(std::string_view text) const {
  const auto all_words = SplitWhitespace(text);
  if (all_words.size() <= options_.max_words) return Trim(text);

  static const tokenizer::WordTokenizer::Options kContentOpts{
      .lowercase = true,
      .strip_punctuation = true,
      .remove_articles = true,
      .remove_stopwords = true,
  };
  static const tokenizer::WordTokenizer kContentTokenizer(kContentOpts);

  const auto sentences = tokenizer::SplitSentences(text);
  if (sentences.empty()) return "";

  // Corpus-wide content-word frequencies.
  std::unordered_map<std::string, double> frequency;
  for (const auto& sentence : sentences) {
    for (const auto& word : kContentTokenizer.Tokenize(sentence)) {
      frequency[word] += 1.0;
    }
  }

  struct Scored {
    size_t index;
    size_t words;
    double score;
  };
  std::vector<Scored> scored;
  scored.reserve(sentences.size());
  for (size_t i = 0; i < sentences.size(); ++i) {
    const auto content = kContentTokenizer.Tokenize(sentences[i]);
    const size_t words = SplitWhitespace(sentences[i]).size();
    if (words < options_.min_sentence_words) continue;
    double score = 0.0;
    for (const auto& w : content) score += frequency[w];
    // Normalize by length so long rambling sentences don't dominate.
    score /= static_cast<double>(words);
    scored.push_back(Scored{i, words, score});
  }
  if (scored.empty()) return "";

  std::sort(scored.begin(), scored.end(), [](const Scored& a, const Scored& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.index < b.index;
  });

  // Drop clearly off-topic sentences (far below the mean centroid score) so
  // the budget backfill below cannot resurrect them.
  double mean_score = 0.0;
  for (const auto& s : scored) mean_score += s.score;
  mean_score /= static_cast<double>(scored.size());
  while (scored.size() > 1 && scored.back().score < 0.5 * mean_score) {
    scored.pop_back();
  }

  // Greedily keep top sentences until the word budget is filled.
  std::vector<size_t> kept;
  size_t used = 0;
  for (const auto& s : scored) {
    if (used + s.words > options_.max_words && !kept.empty()) continue;
    kept.push_back(s.index);
    used += s.words;
    if (used >= options_.max_words) break;
  }
  std::sort(kept.begin(), kept.end());

  std::vector<std::string> out;
  out.reserve(kept.size());
  for (size_t i : kept) out.push_back(sentences[i]);
  return Join(out, " ");
}

}  // namespace llmms::session
