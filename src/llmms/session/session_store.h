#ifndef LLMMS_SESSION_SESSION_STORE_H_
#define LLMMS_SESSION_SESSION_STORE_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "llmms/common/result.h"
#include "llmms/common/status.h"
#include "llmms/session/session.h"

namespace llmms::session {

// Thread-safe registry of live sessions (the sessions sidebar backend,
// §5.2): create, look up, list, and clear conversations.
class SessionStore {
 public:
  explicit SessionStore(Session::Options defaults = Session::Options())
      : defaults_(defaults) {}

  SessionStore(const SessionStore&) = delete;
  SessionStore& operator=(const SessionStore&) = delete;

  // Creates a session; AlreadyExists if the id is taken.
  StatusOr<std::shared_ptr<Session>> Create(const std::string& id);

  // Returns the session, creating it if absent.
  StatusOr<std::shared_ptr<Session>> GetOrCreate(const std::string& id);

  StatusOr<std::shared_ptr<Session>> Get(const std::string& id) const;

  Status Remove(const std::string& id);

  std::vector<std::string> List() const;
  size_t size() const;

 private:
  Session::Options defaults_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<Session>> sessions_;
};

}  // namespace llmms::session

#endif  // LLMMS_SESSION_SESSION_STORE_H_
