#ifndef LLMMS_SESSION_SUMMARIZER_H_
#define LLMMS_SESSION_SUMMARIZER_H_

#include <string>
#include <string_view>

namespace llmms::session {

// Extractive summarizer: scores sentences by the corpus frequency of their
// content words (a classic centroid heuristic) and keeps the highest-scoring
// sentences in their original order. This is the platform's substitute for
// the "AI-generated summary" that replaces old turns (§7.3): hierarchical
// re-summarization of (previous summary + new turns) gives the same
// contract — bounded context that preserves the salient content words.
class Summarizer {
 public:
  struct Options {
    size_t max_words = 60;
    // Sentences shorter than this many words are skipped (greetings, "ok").
    size_t min_sentence_words = 3;
  };

  Summarizer() : Summarizer(Options{}) {}
  explicit Summarizer(const Options& options) : options_(options) {}

  // Returns a summary of at most options().max_words words. Texts already
  // within budget are returned verbatim (trimmed).
  std::string Summarize(std::string_view text) const;

  const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace llmms::session

#endif  // LLMMS_SESSION_SUMMARIZER_H_
