#ifndef LLMMS_SESSION_SESSION_H_
#define LLMMS_SESSION_SESSION_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "llmms/session/summarizer.h"

namespace llmms::session {

enum class Role { kUser, kAssistant, kSystem };

const char* RoleToString(Role role);

struct Message {
  Role role = Role::kUser;
  std::string text;
  uint64_t sequence = 0;  // monotonically increasing per session
};

// One conversation with hierarchical context compression (§5.5, §6.5).
// Thread-safe: SessionStore hands the same Session to concurrent requests.
// Recent turns are kept verbatim; once more than `keep_recent` turns have
// accumulated, the oldest turns are folded into a rolling summary
// (summary' = Summarize(summary + folded turns)), so the context handed to
// the models stays bounded while preserving salient content.
class Session {
 public:
  struct Options {
    // Turns kept verbatim before folding into the summary (the paper folds
    // "after every five messages", §7.3).
    size_t keep_recent = 5;
    Summarizer::Options summarizer;
    // Hard cap on ContextText words.
    size_t max_context_words = 300;
  };

  explicit Session(std::string id) : Session(std::move(id), Options{}) {}
  Session(std::string id, const Options& options);

  // Appends a turn, folding old turns into the summary when needed.
  void Append(Role role, std::string text);

  // The conversation context for the next prompt: rolling summary followed
  // by the verbatim recent turns, clipped to max_context_words.
  std::string ContextText() const;

  // All retained (un-folded) messages, oldest first.
  std::vector<Message> RecentMessages() const;

  std::string summary() const;
  const std::string& id() const { return id_; }
  uint64_t message_count() const;
  void Clear();

 private:
  void FoldOldTurns();  // caller holds mu_

  mutable std::mutex mu_;
  std::string id_;
  Options options_;
  Summarizer summarizer_;
  std::deque<Message> recent_;
  std::string summary_;
  uint64_t next_sequence_ = 0;
};

}  // namespace llmms::session

#endif  // LLMMS_SESSION_SESSION_H_
