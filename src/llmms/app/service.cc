#include "llmms/app/service.h"

#include <algorithm>

#include "llmms/app/nl_config.h"
#include "llmms/llm/hedged_model.h"
#include "llmms/llm/resilient_model.h"
#include "llmms/llm/state_store.h"

namespace llmms::app {
namespace {

core::Algorithm ParseAlgorithm(const std::string& name) {
  if (name == "mab") return core::Algorithm::kMab;
  if (name == "hybrid") return core::Algorithm::kHybrid;
  if (name == "single") return core::Algorithm::kSingle;
  return core::Algorithm::kOua;
}

Json EventToJson(const core::OrchestratorEvent& event) {
  Json out = Json::MakeObject();
  out.Set("type", core::EventTypeToString(event.type));
  out.Set("model", event.model);
  if (!event.text.empty()) out.Set("text", event.text);
  out.Set("score", event.score);
  out.Set("round", event.round);
  out.Set("total_tokens", event.total_tokens);
  return out;
}

}  // namespace

Json ErrorResponse(const Status& status) {
  Json error = Json::MakeObject();
  error.Set("code", StatusCodeToString(status.code()));
  error.Set("message", status.message());
  Json out = Json::MakeObject();
  out.Set("ok", false);
  out.Set("error", std::move(error));
  return out;
}

ApiService::ApiService(core::SearchEngine* engine) : engine_(engine) {}

ApiService::~ApiService() {
  if (state_store_ == nullptr) return;
  // Flush the latest sketches (breaker transitions save eagerly, latency
  // windows only piggy-back on them), then detach the breaker listeners —
  // they hold a raw pointer to the store, which dies with us.
  (void)state_store_->SaveNow();
  for (const auto& name : engine_->runtime()->LoadedModels()) {
    auto model = engine_->runtime()->registry()->Get(name);
    if (!model.ok()) continue;
    if (llm::CircuitBreaker* breaker = BreakerOf(*model)) {
      breaker->SetTransitionListener(nullptr);
    }
  }
}

llm::CircuitBreaker* ApiService::BreakerOf(
    const std::shared_ptr<llm::LanguageModel>& model) {
  std::shared_ptr<llm::LanguageModel> target = model;
  if (auto hedged = std::dynamic_pointer_cast<llm::HedgedModel>(target)) {
    target = hedged->primary();
  }
  auto resilient = std::dynamic_pointer_cast<llm::ResilientModel>(target);
  return resilient == nullptr ? nullptr : resilient->mutable_breaker();
}

Status ApiService::EnableStatePersistence(const std::string& path) {
  auto store = std::make_unique<llm::StateStore>(path);
  LLMMS_RETURN_NOT_OK(store->Load());
  for (const auto& name : engine_->runtime()->LoadedModels()) {
    auto model = engine_->runtime()->registry()->Get(name);
    if (!model.ok()) continue;
    if (llm::CircuitBreaker* breaker = BreakerOf(*model)) {
      store->AttachBreaker(name, breaker);
    }
    if (auto hedged = std::dynamic_pointer_cast<llm::HedgedModel>(*model)) {
      store->AttachSketches(name, hedged);
    }
  }
  state_store_ = std::move(store);
  return Status::OK();
}

void ApiService::SetServerStats(ServerStatsFn fn) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  server_stats_ = std::move(fn);
}

Json ApiService::Handle(const std::string& endpoint, const Json& request,
                        const StreamCallback& stream,
                        const std::shared_ptr<RequestContext>& context) {
  if (endpoint == "/api/query") return HandleQuery(request, stream, context);
  if (endpoint == "/api/upload") return HandleUpload(request);
  if (endpoint == "/api/generate") return HandleGenerate(request, context);
  if (endpoint == "/api/model_info") return HandleModelInfo(request);
  if (endpoint == "/api/models") return HandleModels();
  if (endpoint == "/api/sessions") return HandleSessions();
  if (endpoint == "/api/session/end") return HandleEndSession(request);
  if (endpoint == "/api/health") return HandleHealth();
  if (endpoint == "/api/hardware") return HandleHardware();
  return ErrorResponse(Status::NotFound("no endpoint '" + endpoint + "'"));
}

Json ApiService::HandleQuery(const Json& request,
                             const StreamCallback& stream,
                             const std::shared_ptr<RequestContext>& context) {
  const std::string session = request["session"].AsString();
  const std::string query = request["query"].AsString();
  if (session.empty() || query.empty()) {
    return ErrorResponse(
        Status::InvalidArgument("'session' and 'query' are required"));
  }

  core::SearchEngine::QueryOptions options;
  options.context = context;
  if (request.Contains("algorithm")) {
    options.algorithm = ParseAlgorithm(request["algorithm"].AsString());
  }
  if (request.Contains("budget")) {
    const int64_t budget = request["budget"].AsInt();
    if (budget <= 0) {
      return ErrorResponse(Status::InvalidArgument("'budget' must be > 0"));
    }
    options.token_budget = static_cast<size_t>(budget);
  }
  if (request.Contains("alpha")) {
    options.weights.alpha = request["alpha"].AsDouble();
  }
  if (request.Contains("beta")) {
    options.weights.beta = request["beta"].AsDouble();
  }
  if (request.Contains("single_model")) {
    options.single_model = request["single_model"].AsString();
  }
  if (request.Contains("models")) {
    for (const auto& m : request["models"].AsArray()) {
      options.models.push_back(m.AsString());
    }
  }
  if (request.Contains("use_rag")) {
    options.use_rag = request["use_rag"].AsBool(true);
  }
  if (request.Contains("use_history")) {
    options.use_history = request["use_history"].AsBool(true);
  }
  if (request.Contains("use_memory_graph")) {
    options.use_memory_graph = request["use_memory_graph"].AsBool(false);
  }
  if (request.Contains("scheduler_weight")) {
    const double weight = request["scheduler_weight"].AsDouble();
    if (weight <= 0.0) {
      return ErrorResponse(
          Status::InvalidArgument("'scheduler_weight' must be > 0"));
    }
    options.scheduler_weight = weight;
  }

  // Natural-language configuration (§9.5): a free-text "instructions"
  // field is interpreted on top of the structured settings.
  std::vector<std::string> applied_rules;
  if (request.Contains("instructions")) {
    std::vector<NlModelInfo> infos;
    for (const auto& name : engine_->runtime()->LoadedModels()) {
      NlModelInfo info;
      info.name = name;
      auto model = engine_->runtime()->registry()->Get(name);
      if (model.ok()) info.tokens_per_second = (*model)->tokens_per_second();
      infos.push_back(std::move(info));
    }
    auto configured =
        ApplyNlConfig(request["instructions"].AsString(), options, infos);
    if (!configured.ok()) return ErrorResponse(configured.status());
    options = configured->options;
    applied_rules = configured->applied;
  }

  core::EventCallback callback;
  if (stream) {
    callback = [&stream](const core::OrchestratorEvent& event) {
      stream(EventToJson(event));
    };
  }

  auto result = engine_->Ask(session, query, options, callback);
  if (!result.ok()) return ErrorResponse(result.status());

  Json response = Json::MakeObject();
  response.Set("ok", true);
  response.Set("answer", result->orchestration.answer);
  response.Set("model", result->orchestration.best_model);
  response.Set("total_tokens", result->orchestration.total_tokens);
  response.Set("rounds", result->orchestration.rounds);
  response.Set("early_stopped", result->orchestration.early_stopped);
  response.Set("retrieved_chunks", result->retrieved_chunks);
  response.Set("simulated_seconds", result->orchestration.simulated_seconds);

  // Model routing transparency overlay (§7.3): per-model scores and tokens.
  Json per_model = Json::MakeObject();
  for (const auto& [name, outcome] : result->orchestration.per_model) {
    Json entry = Json::MakeObject();
    entry.Set("score", outcome.final_score);
    entry.Set("query_similarity", outcome.query_similarity);
    entry.Set("inter_similarity", outcome.inter_similarity);
    entry.Set("tokens", outcome.tokens);
    entry.Set("pruned", outcome.pruned);
    entry.Set("finished", outcome.finished);
    per_model.Set(name, std::move(entry));
  }
  response.Set("models", std::move(per_model));
  if (!applied_rules.empty()) {
    Json applied = Json::MakeArray();
    for (const auto& rule : applied_rules) applied.Append(rule);
    response.Set("applied_config", std::move(applied));
  }
  response.Set("recalled_memories", result->recalled_memories);
  return response;
}

Json ApiService::HandleUpload(const Json& request) {
  const std::string session = request["session"].AsString();
  const std::string document_id = request["document_id"].AsString();
  const std::string text = request["text"].AsString();
  if (session.empty() || document_id.empty() || text.empty()) {
    return ErrorResponse(Status::InvalidArgument(
        "'session', 'document_id' and 'text' are required"));
  }
  auto chunks = engine_->Upload(session, document_id, text);
  if (!chunks.ok()) return ErrorResponse(chunks.status());
  Json response = Json::MakeObject();
  response.Set("ok", true);
  response.Set("document_id", document_id);
  response.Set("chunks", *chunks);
  return response;
}

namespace {

// Shared request parsing of the one-shot and streaming generate endpoints.
Status ParseGenerateRequest(const Json& request, std::string* model,
                            llm::GenerationRequest* generation) {
  *model = request["model"].AsString();
  const std::string prompt = request["prompt"].AsString();
  if (model->empty() || prompt.empty()) {
    return Status::InvalidArgument("'model' and 'prompt' are required");
  }
  generation->prompt = prompt;
  generation->max_tokens =
      static_cast<size_t>(std::max<int64_t>(0, request["max_tokens"].AsInt()));
  generation->seed = static_cast<uint64_t>(request["seed"].AsInt());
  return Status::OK();
}

}  // namespace

Json ApiService::HandleGenerate(
    const Json& request, const std::shared_ptr<RequestContext>& context) {
  std::string model;
  llm::GenerationRequest generation;
  if (auto status = ParseGenerateRequest(request, &model, &generation);
      !status.ok()) {
    return ErrorResponse(status);
  }
  generation.context = context;
  auto result = engine_->runtime()->Generate(model, generation);
  if (!result.ok()) return ErrorResponse(result.status());
  Json response = Json::MakeObject();
  response.Set("ok", true);
  response.Set("text", result->text);
  response.Set("tokens", result->num_tokens);
  response.Set("done_reason", llm::StopReasonToString(result->stop_reason));
  response.Set("simulated_seconds", result->simulated_seconds);
  return response;
}

Json ApiService::HandleGenerateStream(
    const Json& request, const StreamCallback& stream,
    const std::shared_ptr<RequestContext>& context) {
  std::string model;
  llm::GenerationRequest generation;
  if (auto status = ParseGenerateRequest(request, &model, &generation);
      !status.ok()) {
    return ErrorResponse(status);
  }
  generation.context = context;
  // Wire granularity: how many tokens each SSE chunk carries. Clients pick
  // the tradeoff between time-to-first-token and framing overhead.
  size_t chunk_tokens = 8;
  if (request.Contains("chunk_tokens")) {
    const int64_t requested = request["chunk_tokens"].AsInt();
    if (requested < 1 || requested > 256) {
      return ErrorResponse(
          Status::InvalidArgument("'chunk_tokens' must be in [1, 256]"));
    }
    chunk_tokens = static_cast<size_t>(requested);
  }

  auto generation_or =
      engine_->runtime()->StartGeneration({model}, generation);
  if (!generation_or.ok()) return ErrorResponse(generation_or.status());
  auto& parallel = *generation_or;
  double extra_carry = 0.0;
  for (;;) {
    auto stats = parallel->StatsOf(model);
    if (!stats.ok()) return ErrorResponse(stats.status());
    if (stats->finished) break;
    size_t ask = chunk_tokens;
    if (generation.max_tokens > 0) {
      const size_t remaining = generation.max_tokens - stats->tokens;
      if (remaining == 0) break;
      ask = std::min(ask, remaining);
    }
    auto chunk = parallel->NextChunk(model, ask);
    // A mid-generation stream failure terminates the SSE stream with an
    // error event — after any chunks already emitted, exactly like a peer
    // dying mid-response.
    if (!chunk.ok()) return ErrorResponse(chunk.status());
    // The chunk's *simulated* latency rides along so the peer's congestion
    // (injected spikes, backoff, hedge re-pricing) is visible to the
    // consuming node's accounting — and to its hedging layer. Token-free
    // chunks are not framed; their latency is carried by the next one.
    extra_carry += chunk->extra_seconds;
    if (stream && chunk->num_tokens > 0) {
      Json event = Json::MakeObject();
      event.Set("text", chunk->text);
      event.Set("tokens", chunk->num_tokens);
      if (extra_carry > 0.0) event.Set("extra_seconds", extra_carry);
      stream(event);
      extra_carry = 0.0;
    }
    if (chunk->done) break;
  }
  auto stats = parallel->StatsOf(model);
  if (!stats.ok()) return ErrorResponse(stats.status());
  Json response = Json::MakeObject();
  response.Set("ok", true);
  response.Set("tokens", stats->tokens);
  response.Set("done_reason",
               llm::StopReasonToString(stats->finished
                                           ? stats->stop_reason
                                           : llm::StopReason::kLength));
  response.Set("simulated_seconds", stats->simulated_seconds);
  return response;
}

Json ApiService::HandleModelInfo(const Json& request) {
  const std::string name = request["model"].AsString();
  if (name.empty()) {
    return ErrorResponse(Status::InvalidArgument("'model' is required"));
  }
  auto model = engine_->runtime()->registry()->Get(name);
  if (!model.ok()) return ErrorResponse(model.status());
  Json response = Json::MakeObject();
  response.Set("ok", true);
  response.Set("name", (*model)->name());
  response.Set("memory_mb", (*model)->memory_mb());
  response.Set("tokens_per_second", (*model)->tokens_per_second());
  response.Set("context_window", (*model)->context_window());
  response.Set("loaded", engine_->runtime()->IsLoaded(name));
  // Capability advertisement for federation peers: true when this node
  // serves the streaming /api/generate variant. Pre-streaming peers omit
  // the field entirely; RemoteModel treats missing and false identically
  // (fallback negotiation, DESIGN.md §9).
  response.Set("streaming", streaming_generate_);
  return response;
}

Json ApiService::HandleModels() {
  Json models = Json::MakeArray();
  for (const auto& name : engine_->runtime()->LoadedModels()) {
    models.Append(name);
  }
  Json response = Json::MakeObject();
  response.Set("ok", true);
  response.Set("models", std::move(models));
  return response;
}

Json ApiService::HandleSessions() {
  Json sessions = Json::MakeArray();
  for (const auto& id : engine_->sessions()->List()) {
    sessions.Append(id);
  }
  Json response = Json::MakeObject();
  response.Set("ok", true);
  response.Set("sessions", std::move(sessions));
  return response;
}

Json ApiService::HandleEndSession(const Json& request) {
  const std::string session = request["session"].AsString();
  if (session.empty()) {
    return ErrorResponse(Status::InvalidArgument("'session' is required"));
  }
  Status status = engine_->EndSession(session);
  if (!status.ok()) return ErrorResponse(status);
  Json response = Json::MakeObject();
  response.Set("ok", true);
  return response;
}

Json ApiService::HandleHealth() {
  Json response = Json::MakeObject();
  response.Set("ok", true);
  const auto loaded = engine_->runtime()->LoadedModels();
  response.Set("loaded_models", loaded.size());

  // Per-model resilience state. Models wrapped in llm::ResilientModel report
  // their circuit-breaker state and failure counters; a llm::HedgedModel
  // additionally reports hedge counters and per-replica latency percentiles
  // (the breaker inspected is the primary replica's). Plain models are
  // reported as "unmanaged" (no breaker in front of them).
  bool degraded = false;
  Json models = Json::MakeArray();
  for (const auto& name : loaded) {
    auto model = engine_->runtime()->registry()->Get(name);
    if (!model.ok()) continue;
    Json entry = Json::MakeObject();
    entry.Set("model", name);
    std::shared_ptr<llm::LanguageModel> target = *model;
    auto hedged = std::dynamic_pointer_cast<llm::HedgedModel>(target);
    if (hedged != nullptr) {
      const auto stats = hedged->stats();
      Json hedging = Json::MakeObject();
      hedging.Set("replicas", hedged->replica_count());
      hedging.Set("hedges_launched", stats.hedges_launched);
      hedging.Set("hedges_won", stats.hedges_won);
      hedging.Set("hedges_lost", stats.hedges_lost);
      hedging.Set("failovers", stats.failovers);
      hedging.Set("wasted_tokens", stats.wasted_tokens);
      hedging.Set("wasted_seconds", stats.wasted_seconds);
      // The adaptive-threshold loop (DESIGN.md §11): where the effective
      // percentile currently sits, its configured bounds, and how often the
      // reward feed has moved it.
      hedging.Set("adaptive", hedged->config().adapt);
      hedging.Set("effective_percentile", hedged->effective_percentile());
      if (hedged->config().adapt) {
        hedging.Set("min_percentile", hedged->config().min_percentile);
        hedging.Set("max_percentile", hedged->config().max_percentile);
        hedging.Set("adaptations", hedged->adaptations());
        hedging.Set("last_favour", hedged->last_favour());
        // The reward feed's estimator (DESIGN.md §16): how the favours
        // driving this group's percentile are being averaged. 0 = lifetime
        // means.
        const auto feed_config = engine_->reward_feed()->config();
        hedging.Set("window_size", feed_config.window);
        hedging.Set("reward_half_life", feed_config.half_life);
      }
      Json latency = Json::MakeArray();
      for (const auto& replica : hedged->LatencySnapshot()) {
        Json sample = Json::MakeObject();
        sample.Set("model", replica.model);
        sample.Set("samples", replica.samples);
        sample.Set("p50_seconds", replica.p50);
        sample.Set("p95_seconds", replica.p95);
        latency.Append(std::move(sample));
      }
      hedging.Set("latency", std::move(latency));
      entry.Set("hedging", std::move(hedging));
      target = hedged->primary();  // the breaker sits inside the hedge layer
    }
    auto resilient = std::dynamic_pointer_cast<llm::ResilientModel>(target);
    if (resilient == nullptr) {
      entry.Set("circuit", "unmanaged");
    } else {
      const auto health = resilient->health();
      if (health.circuit != llm::CircuitBreaker::State::kClosed) {
        degraded = true;
      }
      entry.Set("circuit", llm::CircuitStateToString(health.circuit));
      entry.Set("consecutive_failures", health.consecutive_failures);
      entry.Set("total_failures", health.total_failures);
      entry.Set("fast_rejections", health.fast_rejections);
      entry.Set("start_retries", health.start_retries);
      entry.Set("chunk_retries", health.chunk_retries);
      entry.Set("deadlines_exceeded", health.deadlines_exceeded);
      entry.Set("stalls_detected", health.stalls_detected);
      entry.Set("backoff_seconds", health.backoff_seconds);
      entry.Set("breaker_call_clock",
                static_cast<size_t>(resilient->breaker().call_clock()));
      Json history = Json::MakeArray();
      for (const auto& transition : resilient->breaker().history()) {
        Json change = Json::MakeObject();
        change.Set("from", llm::CircuitStateToString(transition.from));
        change.Set("to", llm::CircuitStateToString(transition.to));
        change.Set("at_call", static_cast<size_t>(transition.at_call));
        history.Append(std::move(change));
      }
      entry.Set("circuit_history", std::move(history));
    }
    models.Append(std::move(entry));
  }
  response.Set("status", degraded ? "degraded" : "healthy");
  response.Set("models", std::move(models));

  // Placement block: where each model sits and what it reserves. A hedged
  // group shows the race headroom (hedge_extra_mb) the scheduler charged on
  // top of its steady-state footprint.
  Json placement = Json::MakeArray();
  for (const auto& info : engine_->runtime()->PlacementSnapshot()) {
    Json entry = Json::MakeObject();
    entry.Set("model", info.model);
    entry.Set("device", info.device);
    entry.Set("memory_mb", info.memory_mb);
    entry.Set("hedge_extra_mb", info.hedge_extra_mb);
    entry.Set("race_peak_mb", info.memory_mb + info.hedge_extra_mb);
    placement.Append(std::move(entry));
  }
  response.Set("placement", std::move(placement));

  // Serving-layer overload telemetry (queue depth, in-flight gauge, shed /
  // timeout / cancel counters), present when an HttpServer fronts this
  // service. Copied under the lock, invoked outside it: the fn only reads
  // shared atomic counters.
  ServerStatsFn stats_fn;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_fn = server_stats_;
  }
  if (stats_fn) response.Set("server", stats_fn());

  // Continuous-batching gauges (DESIGN.md §13), present when the runtime
  // has a BatchScheduler multiplexing queries over shared replicas.
  if (auto scheduler = engine_->runtime()->scheduler()) {
    const auto stats = scheduler->stats();
    Json batching = Json::MakeObject();
    batching.Set("replicas_per_model", stats.replicas_per_model);
    batching.Set("admitted_total", stats.admitted_total);
    batching.Set("finished_total", stats.finished_total);
    batching.Set("hedge_admitted_total", stats.hedge_admitted_total);
    batching.Set("expired_total", stats.expired_total);
    batching.Set("dispatches", stats.dispatches);
    batching.Set("rounds", stats.rounds);
    batching.Set("preempted_total", stats.preempted_total);
    batching.Set("runnable", stats.runnable);
    batching.Set("waiting", stats.waiting);
    batching.Set("running", stats.running);
    batching.Set("total_service_tokens", stats.total_service_tokens);
    batching.Set("fairness_index", stats.fairness_index);
    Json streams = Json::MakeArray();
    for (const auto& s : stats.streams) {
      Json stream = Json::MakeObject();
      stream.Set("id", static_cast<size_t>(s.id));
      stream.Set("model", s.model);
      stream.Set("weight", s.weight);
      stream.Set("hedge", s.hedge);
      stream.Set("virtual_time", s.virtual_time);
      stream.Set("service_tokens", s.service_tokens);
      stream.Set("chunks", s.chunks);
      stream.Set("preemptions", s.preemptions);
      stream.Set("running", s.running);
      streams.Append(std::move(stream));
    }
    batching.Set("streams", std::move(streams));
    Json replica_models = Json::MakeArray();
    for (const auto& m : stats.models) {
      Json entry = Json::MakeObject();
      entry.Set("model", m.model);
      entry.Set("replicas", m.replicas);
      double busy_max = 0.0;
      double busy_total = 0.0;
      for (double b : m.slot_busy_seconds) {
        busy_max = std::max(busy_max, b);
        busy_total += b;
      }
      entry.Set("slot_busy_seconds_max", busy_max);
      entry.Set("slot_busy_seconds_total", busy_total);
      replica_models.Append(std::move(entry));
    }
    batching.Set("models", std::move(replica_models));
    response.Set("scheduler", std::move(batching));
  }

  // Storage-plane telemetry (DESIGN.md §14): lifetime recovery/corruption
  // counters from the durable components plus the default filesystem's op
  // counts. `chaos` is true when LLMMS_IO_CHAOS put a fault-injecting
  // filesystem underneath — so operators can tell injected trouble from a
  // genuinely failing disk.
  {
    const auto& sc = GlobalStorageCounters();
    Json storage = Json::MakeObject();
    Json recovery = Json::MakeObject();
    recovery.Set("wal_replays", sc.wal_replays.load());
    recovery.Set("wal_records_replayed", sc.wal_records_replayed.load());
    recovery.Set("torn_tails_recovered", sc.torn_tails_recovered.load());
    recovery.Set("sequence_breaks", sc.sequence_breaks.load());
    recovery.Set("compactions", sc.compactions.load());
    recovery.Set("compaction_failures", sc.compaction_failures.load());
    recovery.Set("snapshot_saves", sc.snapshot_saves.load());
    recovery.Set("snapshot_save_failures", sc.snapshot_save_failures.load());
    recovery.Set("snapshot_loads", sc.snapshot_loads.load());
    recovery.Set("snapshot_load_failures", sc.snapshot_load_failures.load());
    recovery.Set("state_saves", sc.state_saves.load());
    recovery.Set("state_save_failures", sc.state_save_failures.load());
    recovery.Set("state_cold_starts", sc.state_cold_starts.load());
    storage.Set("recovery", std::move(recovery));

    FileSystem* fs = FileSystem::Default();
    const auto ops = fs->op_counts();
    Json io = Json::MakeObject();
    io.Set("opens", ops.opens);
    io.Set("appends", ops.appends);
    io.Set("bytes_appended", ops.bytes_appended);
    io.Set("syncs", ops.syncs);
    io.Set("dir_syncs", ops.dir_syncs);
    io.Set("reads", ops.reads);
    io.Set("renames", ops.renames);
    io.Set("removes", ops.removes);
    io.Set("injected_faults", ops.injected_faults);
    io.Set("read_corruptions", ops.read_corruptions);
    storage.Set("io", std::move(io));
    storage.Set("chaos", fs->injects_faults());

    if (state_store_ != nullptr) {
      Json state = Json::MakeObject();
      state.Set("path", state_store_->path());
      state.Set("load_warning", state_store_->load_warning());
      storage.Set("state_store", std::move(state));
    }
    response.Set("storage", std::move(storage));
  }

  // Vector-database gauges (DESIGN.md §15): one entry per collection with
  // per-shard record counts, lifetime query counters (QPS numerators), and
  // approximate index memory — plain collections report a single shard.
  if (engine_->db() != nullptr) {
    Json collections = Json::MakeArray();
    size_t total_records = 0;
    uint64_t total_queries = 0;
    for (const auto& stats : engine_->db()->Stats()) {
      Json entry = Json::MakeObject();
      entry.Set("collection", stats.name);
      entry.Set("sharded", stats.sharded);
      entry.Set("num_shards", stats.shards.size());
      Json shards = Json::MakeArray();
      for (const auto& shard : stats.shards) {
        Json s = Json::MakeObject();
        s.Set("records", shard.records);
        s.Set("queries", shard.queries);
        s.Set("vector_bytes", shard.vector_bytes);
        s.Set("quantized", shard.quantized);
        total_records += shard.records;
        total_queries += shard.queries;
        shards.Append(std::move(s));
      }
      entry.Set("shards", std::move(shards));
      collections.Append(std::move(entry));
    }
    Json vdb = Json::MakeObject();
    vdb.Set("collections", std::move(collections));
    vdb.Set("total_records", total_records);
    vdb.Set("total_queries", static_cast<size_t>(total_queries));
    response.Set("vectordb", std::move(vdb));
  }
  return response;
}

Json ApiService::HandleHardware() {
  Json devices = Json::MakeArray();
  for (const auto& t : engine_->runtime()->hardware()->Snapshot()) {
    Json device = Json::MakeObject();
    device.Set("name", t.name);
    device.Set("kind", t.kind == hardware::DeviceKind::kGpu ? "gpu" : "cpu");
    device.Set("memory_total_mb", t.memory_total_mb);
    device.Set("memory_used_mb", t.memory_used_mb);
    device.Set("active_jobs", t.active_jobs);
    device.Set("utilization", t.utilization);
    device.Set("temperature_c", t.temperature_c);
    devices.Append(std::move(device));
  }
  Json response = Json::MakeObject();
  response.Set("ok", true);
  response.Set("devices", std::move(devices));
  return response;
}

}  // namespace llmms::app
