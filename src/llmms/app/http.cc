#include "llmms/app/http.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "llmms/common/string_util.h"

namespace llmms::app {
namespace {

std::string LowerCase(std::string_view s) { return ToLower(s); }

// Splits "HEAD\r\n\r\nBODY"; returns npos-safe positions.
bool SplitHead(std::string_view raw, std::string_view* head,
               std::string_view* rest) {
  const size_t pos = raw.find("\r\n\r\n");
  if (pos == std::string_view::npos) return false;
  *head = raw.substr(0, pos);
  *rest = raw.substr(pos + 4);
  return true;
}

Status ParseHeaderLines(std::string_view head,
                        std::map<std::string, std::string>* headers) {
  size_t start = 0;
  while (start < head.size()) {
    size_t end = head.find("\r\n", start);
    if (end == std::string_view::npos) end = head.size();
    const std::string_view line = head.substr(start, end - start);
    start = end + 2;
    if (line.empty()) continue;
    const size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      return Status::InvalidArgument("malformed header line");
    }
    std::string key = LowerCase(TrimView(line.substr(0, colon)));
    std::string value(TrimView(line.substr(colon + 1)));
    (*headers)[std::move(key)] = std::move(value);
  }
  return Status::OK();
}

StatusOr<std::string> DecodeChunked(std::string_view data) {
  ChunkedDecoder decoder;
  std::string out;
  LLMMS_RETURN_NOT_OK(decoder.Feed(data, &out));
  if (!decoder.done()) {
    return Status::InvalidArgument("truncated chunked body");
  }
  return out;
}

}  // namespace

Status ChunkedDecoder::Feed(std::string_view bytes, std::string* out) {
  auto fail = [this](const char* message) {
    state_ = State::kError;
    return Status::InvalidArgument(message);
  };
  size_t pos = 0;
  while (pos < bytes.size()) {
    switch (state_) {
      case State::kSizeLine: {
        const size_t nl = bytes.find('\n', pos);
        size_line_.append(bytes.substr(pos, nl == std::string_view::npos
                                                ? bytes.size() - pos
                                                : nl - pos));
        if (size_line_.size() > 64) return fail("oversized chunk size line");
        if (nl == std::string_view::npos) return Status::OK();
        pos = nl + 1;
        while (!size_line_.empty() && size_line_.back() == '\r') {
          size_line_.pop_back();
        }
        if (size_line_.empty() ||
            !std::isxdigit(static_cast<unsigned char>(size_line_[0]))) {
          return fail("malformed chunk size line");
        }
        // Chunk extensions after ';' are ignored (strtoul stops there).
        remaining_ = std::strtoul(size_line_.c_str(), nullptr, 16);
        size_line_.clear();
        state_ = remaining_ == 0 ? State::kDone : State::kData;
        break;
      }
      case State::kData: {
        const size_t take = std::min(remaining_, bytes.size() - pos);
        out->append(bytes.substr(pos, take));
        pos += take;
        remaining_ -= take;
        if (remaining_ == 0) state_ = State::kDataEnd;
        break;
      }
      case State::kDataEnd: {
        // Consume the CRLF (or bare LF) that closes the chunk payload.
        // `remaining_` is 0 on entry and marks "CR seen, LF required".
        const char c = bytes[pos++];
        if (c == '\r' && remaining_ == 0) {
          remaining_ = 1;
          break;
        }
        if (c != '\n') return fail("missing CRLF after chunk payload");
        remaining_ = 0;
        state_ = State::kSizeLine;
        break;
      }
      case State::kDone:
        return Status::OK();  // trailers are ignored
      case State::kError:
        return Status::InvalidArgument("chunked decoder previously failed");
    }
  }
  return Status::OK();
}

const char* HttpReasonPhrase(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 408:
      return "Request Timeout";
    case 413:
      return "Payload Too Large";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
    case 504:
      return "Gateway Timeout";
    default:
      return "Unknown";
  }
}

StatusOr<HttpRequest> ParseHttpRequest(std::string_view raw) {
  std::string_view head;
  std::string_view body;
  if (!SplitHead(raw, &head, &body)) {
    return Status::InvalidArgument("incomplete HTTP request head");
  }
  const size_t line_end = head.find("\r\n");
  const std::string_view request_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);

  HttpRequest request;
  const auto parts = SplitWhitespace(request_line);
  if (parts.size() < 3 || !StartsWith(parts[2], "HTTP/1.")) {
    return Status::InvalidArgument("malformed HTTP request line");
  }
  request.method = parts[0];
  std::string target = parts[1];
  const size_t question = target.find('?');
  if (question != std::string::npos) {
    request.query = target.substr(question + 1);
    target.resize(question);
  }
  request.path = std::move(target);

  if (line_end != std::string_view::npos) {
    LLMMS_RETURN_NOT_OK(
        ParseHeaderLines(head.substr(line_end + 2), &request.headers));
  }

  size_t content_length = 0;
  auto it = request.headers.find("content-length");
  if (it != request.headers.end()) {
    content_length = static_cast<size_t>(std::strtoull(it->second.c_str(),
                                                       nullptr, 10));
  }
  if (body.size() < content_length) {
    return Status::InvalidArgument("request body shorter than content-length");
  }
  request.body = std::string(body.substr(0, content_length));
  return request;
}

std::string SerializeHttpResponse(const HttpResponse& response) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    HttpReasonPhrase(response.status) + "\r\n";
  bool has_content_length = false;
  for (const auto& [key, value] : response.headers) {
    out += key + ": " + value + "\r\n";
    has_content_length = has_content_length || key == "content-length";
  }
  if (!has_content_length) {
    out += "content-length: " + std::to_string(response.body.size()) + "\r\n";
  }
  out += "connection: close\r\n\r\n";
  out += response.body;
  return out;
}

StatusOr<HttpResponse> ParseHttpResponseHead(std::string_view head) {
  const size_t line_end = head.find("\r\n");
  const std::string_view status_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  const auto parts = SplitWhitespace(status_line);
  if (parts.size() < 2 || !StartsWith(parts[0], "HTTP/1.")) {
    return Status::InvalidArgument("malformed HTTP status line");
  }
  HttpResponse response;
  response.status = static_cast<int>(std::strtol(parts[1].c_str(), nullptr, 10));
  if (line_end != std::string_view::npos) {
    LLMMS_RETURN_NOT_OK(
        ParseHeaderLines(head.substr(line_end + 2), &response.headers));
  }
  return response;
}

StatusOr<HttpResponse> ParseHttpResponse(std::string_view raw) {
  std::string_view head;
  std::string_view body;
  if (!SplitHead(raw, &head, &body)) {
    return Status::InvalidArgument("incomplete HTTP response head");
  }
  LLMMS_ASSIGN_OR_RETURN(HttpResponse response, ParseHttpResponseHead(head));

  auto te = response.headers.find("transfer-encoding");
  if (te != response.headers.end() && ToLower(te->second) == "chunked") {
    LLMMS_ASSIGN_OR_RETURN(response.body, DecodeChunked(body));
    return response;
  }
  auto cl = response.headers.find("content-length");
  if (cl != response.headers.end()) {
    const size_t n = static_cast<size_t>(std::strtoull(cl->second.c_str(),
                                                       nullptr, 10));
    if (body.size() < n) {
      return Status::InvalidArgument("response body shorter than length");
    }
    response.body = std::string(body.substr(0, n));
  } else {
    response.body = std::string(body);  // close-delimited
  }
  return response;
}

}  // namespace llmms::app
