#include "llmms/app/http.h"

#include <cctype>
#include <cstdlib>

#include "llmms/common/string_util.h"

namespace llmms::app {
namespace {

std::string LowerCase(std::string_view s) { return ToLower(s); }

// Splits "HEAD\r\n\r\nBODY"; returns npos-safe positions.
bool SplitHead(std::string_view raw, std::string_view* head,
               std::string_view* rest) {
  const size_t pos = raw.find("\r\n\r\n");
  if (pos == std::string_view::npos) return false;
  *head = raw.substr(0, pos);
  *rest = raw.substr(pos + 4);
  return true;
}

Status ParseHeaderLines(std::string_view head,
                        std::map<std::string, std::string>* headers) {
  size_t start = 0;
  while (start < head.size()) {
    size_t end = head.find("\r\n", start);
    if (end == std::string_view::npos) end = head.size();
    const std::string_view line = head.substr(start, end - start);
    start = end + 2;
    if (line.empty()) continue;
    const size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      return Status::InvalidArgument("malformed header line");
    }
    std::string key = LowerCase(TrimView(line.substr(0, colon)));
    std::string value(TrimView(line.substr(colon + 1)));
    (*headers)[std::move(key)] = std::move(value);
  }
  return Status::OK();
}

StatusOr<std::string> DecodeChunked(std::string_view data) {
  std::string out;
  size_t pos = 0;
  for (;;) {
    const size_t line_end = data.find("\r\n", pos);
    if (line_end == std::string_view::npos) {
      return Status::InvalidArgument("truncated chunk size line");
    }
    const std::string size_line(data.substr(pos, line_end - pos));
    const unsigned long chunk_size = std::strtoul(size_line.c_str(), nullptr, 16);
    pos = line_end + 2;
    if (chunk_size == 0) return out;
    if (pos + chunk_size + 2 > data.size()) {
      return Status::InvalidArgument("truncated chunk body");
    }
    out.append(data.substr(pos, chunk_size));
    pos += chunk_size + 2;  // skip trailing CRLF
  }
}

}  // namespace

const char* HttpReasonPhrase(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 500:
      return "Internal Server Error";
    default:
      return "Unknown";
  }
}

StatusOr<HttpRequest> ParseHttpRequest(std::string_view raw) {
  std::string_view head;
  std::string_view body;
  if (!SplitHead(raw, &head, &body)) {
    return Status::InvalidArgument("incomplete HTTP request head");
  }
  const size_t line_end = head.find("\r\n");
  const std::string_view request_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);

  HttpRequest request;
  const auto parts = SplitWhitespace(request_line);
  if (parts.size() < 3 || !StartsWith(parts[2], "HTTP/1.")) {
    return Status::InvalidArgument("malformed HTTP request line");
  }
  request.method = parts[0];
  std::string target = parts[1];
  const size_t question = target.find('?');
  if (question != std::string::npos) {
    request.query = target.substr(question + 1);
    target.resize(question);
  }
  request.path = std::move(target);

  if (line_end != std::string_view::npos) {
    LLMMS_RETURN_NOT_OK(
        ParseHeaderLines(head.substr(line_end + 2), &request.headers));
  }

  size_t content_length = 0;
  auto it = request.headers.find("content-length");
  if (it != request.headers.end()) {
    content_length = static_cast<size_t>(std::strtoull(it->second.c_str(),
                                                       nullptr, 10));
  }
  if (body.size() < content_length) {
    return Status::InvalidArgument("request body shorter than content-length");
  }
  request.body = std::string(body.substr(0, content_length));
  return request;
}

std::string SerializeHttpResponse(const HttpResponse& response) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    HttpReasonPhrase(response.status) + "\r\n";
  bool has_content_length = false;
  for (const auto& [key, value] : response.headers) {
    out += key + ": " + value + "\r\n";
    has_content_length = has_content_length || key == "content-length";
  }
  if (!has_content_length) {
    out += "content-length: " + std::to_string(response.body.size()) + "\r\n";
  }
  out += "connection: close\r\n\r\n";
  out += response.body;
  return out;
}

StatusOr<HttpResponse> ParseHttpResponse(std::string_view raw) {
  std::string_view head;
  std::string_view body;
  if (!SplitHead(raw, &head, &body)) {
    return Status::InvalidArgument("incomplete HTTP response head");
  }
  const size_t line_end = head.find("\r\n");
  const std::string_view status_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  const auto parts = SplitWhitespace(status_line);
  if (parts.size() < 2 || !StartsWith(parts[0], "HTTP/1.")) {
    return Status::InvalidArgument("malformed HTTP status line");
  }
  HttpResponse response;
  response.status = static_cast<int>(std::strtol(parts[1].c_str(), nullptr, 10));
  if (line_end != std::string_view::npos) {
    LLMMS_RETURN_NOT_OK(
        ParseHeaderLines(head.substr(line_end + 2), &response.headers));
  }

  auto te = response.headers.find("transfer-encoding");
  if (te != response.headers.end() && ToLower(te->second) == "chunked") {
    LLMMS_ASSIGN_OR_RETURN(response.body, DecodeChunked(body));
    return response;
  }
  auto cl = response.headers.find("content-length");
  if (cl != response.headers.end()) {
    const size_t n = static_cast<size_t>(std::strtoull(cl->second.c_str(),
                                                       nullptr, 10));
    if (body.size() < n) {
      return Status::InvalidArgument("response body shorter than length");
    }
    response.body = std::string(body.substr(0, n));
  } else {
    response.body = std::string(body);  // close-delimited
  }
  return response;
}

}  // namespace llmms::app
