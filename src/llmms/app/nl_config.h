#ifndef LLMMS_APP_NL_CONFIG_H_
#define LLMMS_APP_NL_CONFIG_H_

#include <string>
#include <vector>

#include "llmms/common/result.h"
#include "llmms/common/status.h"
#include "llmms/core/search_engine.h"

namespace llmms::app {

// Natural-language configuration interface (§9.5): turns plain-English
// instructions — "avoid using slow models", "prioritize our legal model",
// "keep responses under 200 words", "use the bandit algorithm", "budget 512
// tokens", "focus on consensus" — into QueryOptions mutations.
//
// Rule-based and deterministic: each recognized directive appends a
// human-readable description of what was applied, so the UI can echo the
// interpretation back to the user. Unrecognized sentences are ignored (the
// result lists only what was applied).

struct NlModelInfo {
  std::string name;
  double tokens_per_second = 0.0;  // for "avoid slow models"
};

struct NlConfigResult {
  core::SearchEngine::QueryOptions options;
  std::vector<std::string> applied;  // one line per applied directive
};

// Applies `instruction` on top of `base`. `models` lists the available
// models (with speeds) so model-name and speed directives can resolve.
// Never fails on unrecognized text; fails only on contradictory or invalid
// directives (e.g. every model excluded).
StatusOr<NlConfigResult> ApplyNlConfig(
    const std::string& instruction,
    const core::SearchEngine::QueryOptions& base,
    const std::vector<NlModelInfo>& models);

}  // namespace llmms::app

#endif  // LLMMS_APP_NL_CONFIG_H_
