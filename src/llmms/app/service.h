#ifndef LLMMS_APP_SERVICE_H_
#define LLMMS_APP_SERVICE_H_

#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "llmms/common/deadline.h"
#include "llmms/common/json.h"
#include "llmms/core/search_engine.h"

namespace llmms::llm {
class CircuitBreaker;
class StateStore;
}  // namespace llmms::llm

namespace llmms::app {

// Receives one JSON event per streamed token chunk / orchestration decision
// (the SSE payloads of §7.2 step 7).
using StreamCallback = std::function<void(const Json& event)>;

// The application layer's REST contract, process-local: JSON in, JSON out,
// endpoint strings matching the Flask blueprints (§7.1). Every response is
// an object with "ok": bool; failures carry {"error": {"code", "message"}}.
//
// Endpoints:
//   POST /api/query    {session, query, algorithm?, budget?, alpha?, beta?,
//                       models?[], single_model?, use_rag?, use_history?}
//   POST /api/upload   {session, document_id, text}
//   POST /api/generate {model, prompt, max_tokens?, seed?, chunk_tokens?}
//                       (federation: raw single-model completion, §9.5; with
//                       ?stream=1 the HTTP layer streams it as SSE chunks —
//                       DESIGN.md §9)
//   GET  /api/models   {}
//   POST /api/model_info {model}
//   GET  /api/sessions {}
//   POST /api/session/end {session}
//   GET  /api/health   {}  (per-model circuit state + failure counters;
//                       "status" is "degraded" while any circuit is open)
//   GET  /api/hardware {}
class ApiService {
 public:
  // `engine` must outlive the service.
  explicit ApiService(core::SearchEngine* engine);
  ~ApiService();

  // Dispatches by endpoint. Unknown endpoints return a NotFound error
  // payload. `stream` (optional) receives token/score/decision events during
  // /api/query. `context` (optional) carries the request's wall-clock
  // deadline and cancellation flag; the generation-driving endpoints thread
  // it into the engine so an expired or cancelled request unwinds with a
  // typed DeadlineExceeded / Cancelled error payload instead of running to
  // completion (DESIGN.md §12).
  Json Handle(const std::string& endpoint, const Json& request,
              const StreamCallback& stream = StreamCallback(),
              const std::shared_ptr<RequestContext>& context = nullptr);

  Json HandleQuery(const Json& request, const StreamCallback& stream,
                   const std::shared_ptr<RequestContext>& context = nullptr);
  Json HandleUpload(const Json& request);
  Json HandleGenerate(const Json& request,
                      const std::shared_ptr<RequestContext>& context = nullptr);
  // Streaming twin of HandleGenerate: emits one {"text", "tokens"} event per
  // generated chunk through `stream` and returns the terminal accounting
  // ({"ok", "done_reason", "tokens", "simulated_seconds"}) — or an error
  // payload, possibly after chunks have already been emitted (a backend
  // dying mid-generation). The HTTP layer maps the return value to the
  // stream's terminal `done` / `error` SSE event.
  Json HandleGenerateStream(const Json& request, const StreamCallback& stream,
                            const std::shared_ptr<RequestContext>& context =
                                nullptr);
  Json HandleModelInfo(const Json& request);
  Json HandleModels();
  Json HandleSessions();
  Json HandleEndSession(const Json& request);
  Json HandleHealth();
  Json HandleHardware();

  // Whether this node offers the streaming /api/generate wire protocol.
  // Advertised to federation peers via /api/model_info ("streaming": true);
  // disabling it makes the node behave like a pre-streaming peer, which is
  // how the fallback negotiation is exercised in tests and demos.
  void set_streaming_generate(bool enabled) { streaming_generate_ = enabled; }
  bool streaming_generate() const { return streaming_generate_; }

  // Durable node state (llm::StateStore): loads saved state from `path` (a
  // missing file is a clean first run; a corrupt one cold-starts — see
  // StateStore::Load), restores breaker snapshots into every currently
  // loaded model that has a breaker (unwrapping a HedgedModel to its
  // primary replica) and latency sketches into every hedged group — so the
  // first post-restart request hedges with real percentiles — then re-saves
  // the file on every breaker transition and at service shutdown. Call
  // AFTER the models are loaded; models loaded later are not attached.
  Status EnableStatePersistence(const std::string& path);
  llm::StateStore* state_store() const { return state_store_.get(); }

  // Serving-layer stats injected into /api/health as the "server" block
  // (queue depth, in-flight gauge, shed counters — see HttpServer). The
  // provider must either outlive the service or share ownership of the
  // state it reads (HttpServer hands a closure over a shared_ptr, so a
  // stopped/destroyed server leaves the last counters readable rather than
  // a dangling pointer). Thread-safe; pass nullptr to detach.
  using ServerStatsFn = std::function<Json()>;
  void SetServerStats(ServerStatsFn fn);

 private:
  // The breaker of `model`, unwrapping the hedging decorator, or nullptr.
  static llm::CircuitBreaker* BreakerOf(
      const std::shared_ptr<llm::LanguageModel>& model);

  core::SearchEngine* engine_;
  bool streaming_generate_ = true;
  std::unique_ptr<llm::StateStore> state_store_;
  mutable std::mutex stats_mu_;  // guards server_stats_ (set vs. health)
  ServerStatsFn server_stats_;
};

// Builds the error payload used by every endpoint.
Json ErrorResponse(const Status& status);

}  // namespace llmms::app

#endif  // LLMMS_APP_SERVICE_H_
