#include "llmms/app/sse.h"

#include "llmms/common/string_util.h"

namespace llmms::app {

std::string EncodeSse(const SseEvent& event) {
  std::string out;
  if (!event.event.empty()) {
    out += "event: " + event.event + "\n";
  }
  if (!event.id.empty()) {
    out += "id: " + event.id + "\n";
  }
  for (const auto& line : Split(event.data, '\n')) {
    out += "data: " + line + "\n";
  }
  out += "\n";
  return out;
}

std::vector<SseEvent> DecodeSse(const std::string& wire) {
  std::vector<SseEvent> events;
  SseEvent current;
  bool has_fields = false;
  bool first_data = true;
  for (const auto& raw_line : Split(wire, '\n')) {
    if (raw_line.empty()) {
      if (has_fields) {
        events.push_back(std::move(current));
        current = SseEvent{};
        has_fields = false;
        first_data = true;
      }
      continue;
    }
    if (StartsWith(raw_line, ":")) continue;  // comment
    const size_t colon = raw_line.find(':');
    std::string field = colon == std::string::npos
                            ? raw_line
                            : raw_line.substr(0, colon);
    std::string value;
    if (colon != std::string::npos) {
      value = raw_line.substr(colon + 1);
      if (!value.empty() && value.front() == ' ') value.erase(0, 1);
    }
    if (field == "event") {
      current.event = value;
      has_fields = true;
    } else if (field == "data") {
      if (!first_data) current.data += '\n';
      current.data += value;
      first_data = false;
      has_fields = true;
    } else if (field == "id") {
      current.id = value;
      has_fields = true;
    }
  }
  return events;
}

}  // namespace llmms::app
