#include "llmms/app/sse.h"

#include "llmms/common/string_util.h"

namespace llmms::app {

std::string EncodeSse(const SseEvent& event) {
  std::string out;
  if (!event.event.empty()) {
    out += "event: " + event.event + "\n";
  }
  if (!event.id.empty()) {
    out += "id: " + event.id + "\n";
  }
  for (const auto& line : Split(event.data, '\n')) {
    out += "data: " + line + "\n";
  }
  out += "\n";
  return out;
}

void SseDecoder::ConsumeLine(std::vector<SseEvent>* out) {
  std::string_view line = line_;
  if (at_stream_start_) {
    at_stream_start_ = false;
    if (StartsWith(line, "\xEF\xBB\xBF")) line.remove_prefix(3);
  }
  if (line.empty()) {
    if (has_fields_) {
      out->push_back(std::move(current_));
      current_ = SseEvent{};
      has_fields_ = false;
      first_data_ = true;
    }
    line_.clear();
    return;
  }
  if (line.front() != ':') {  // lines starting ':' are comments
    const size_t colon = line.find(':');
    const std::string_view field =
        colon == std::string_view::npos ? line : line.substr(0, colon);
    std::string_view value;
    if (colon != std::string_view::npos) {
      value = line.substr(colon + 1);
      if (!value.empty() && value.front() == ' ') value.remove_prefix(1);
    }
    if (field == "event") {
      current_.event = std::string(value);
      has_fields_ = true;
    } else if (field == "data") {
      if (!first_data_) current_.data += '\n';
      current_.data += value;
      first_data_ = false;
      has_fields_ = true;
    } else if (field == "id") {
      current_.id = std::string(value);
      has_fields_ = true;
    }
    // Unknown fields are ignored per the spec.
  }
  line_.clear();
}

std::vector<SseEvent> SseDecoder::Feed(std::string_view bytes) {
  std::vector<SseEvent> out;
  for (const char c : bytes) {
    if (skip_lf_) {
      skip_lf_ = false;
      if (c == '\n') continue;  // second half of a CRLF pair
    }
    if (c == '\r') {
      ConsumeLine(&out);
      skip_lf_ = true;
    } else if (c == '\n') {
      ConsumeLine(&out);
    } else {
      line_.push_back(c);
    }
  }
  return out;
}

std::vector<SseEvent> DecodeSseIncremental(std::string_view bytes,
                                           SseDecoder* decoder) {
  return decoder->Feed(bytes);
}

std::vector<SseEvent> DecodeSse(const std::string& wire) {
  SseDecoder decoder;
  return decoder.Feed(wire);
}

}  // namespace llmms::app
