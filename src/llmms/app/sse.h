#ifndef LLMMS_APP_SSE_H_
#define LLMMS_APP_SSE_H_

#include <string>
#include <vector>

#include "llmms/common/json.h"

namespace llmms::app {

// One server-sent event (the streaming wire format the platform's Flask
// layer forwards from Ollama to the browser, §7.1/§7.2 step 7).
struct SseEvent {
  std::string event;  // event name; empty = default "message"
  std::string data;   // payload (typically JSON)
  std::string id;     // optional event id
};

// Encodes an event in SSE wire format:
//   event: <name>\n id: <id>\n data: <line>\n ... \n\n
// Multi-line data is split across data: fields per the SSE spec.
std::string EncodeSse(const SseEvent& event);

// Parses a complete SSE stream back into events (used by tests and by the
// CLI client example). Incomplete trailing events are ignored.
std::vector<SseEvent> DecodeSse(const std::string& wire);

}  // namespace llmms::app

#endif  // LLMMS_APP_SSE_H_
