#ifndef LLMMS_APP_SSE_H_
#define LLMMS_APP_SSE_H_

#include <string>
#include <string_view>
#include <vector>

#include "llmms/common/json.h"

namespace llmms::app {

// One server-sent event (the streaming wire format the platform's Flask
// layer forwards from Ollama to the browser, §7.1/§7.2 step 7; also the
// frame format of the federation streaming protocol, DESIGN.md §9).
struct SseEvent {
  std::string event;  // event name; empty = default "message"
  std::string data;   // payload (typically JSON)
  std::string id;     // optional event id
};

// Encodes an event in SSE wire format:
//   event: <name>\n id: <id>\n data: <line>\n ... \n\n
// Multi-line data is split across data: fields per the SSE spec.
std::string EncodeSse(const SseEvent& event);

// Incremental SSE decoder: a state machine that accepts the stream in
// arbitrary slices — an event split across read boundaries (even inside a
// field name, a CRLF pair, or the UTF-8 BOM) decodes identically to the
// whole stream fed at once. Per the SSE spec it accepts CRLF, LF, and CR
// line terminators, strips a leading BOM, ignores comment lines, and
// dispatches an event only at its terminating blank line (a trailing event
// with no blank line is never emitted).
class SseDecoder {
 public:
  // Consumes the next slice of the stream and returns the events completed
  // by it, in order.
  std::vector<SseEvent> Feed(std::string_view bytes);

  // True while field lines (or a partial line) have accumulated without the
  // terminating blank line — data a peer dropped mid-event.
  bool has_partial_event() const { return has_fields_ || !line_.empty(); }

 private:
  void ConsumeLine(std::vector<SseEvent>* out);

  std::string line_;        // partial line carried across Feed boundaries
  SseEvent current_;
  bool has_fields_ = false;
  bool first_data_ = true;
  bool at_stream_start_ = true;  // BOM may only precede the first line
  bool skip_lf_ = false;         // swallow the LF of a split CRLF pair
};

// Feeds one slice through `decoder` (state carries over between calls).
// Convenience spelling of decoder->Feed for call sites that read the wire
// in a loop.
std::vector<SseEvent> DecodeSseIncremental(std::string_view bytes,
                                           SseDecoder* decoder);

// Parses a complete SSE stream back into events (used by tests and by the
// CLI client example). Incomplete trailing events are ignored.
std::vector<SseEvent> DecodeSse(const std::string& wire);

}  // namespace llmms::app

#endif  // LLMMS_APP_SSE_H_
