#include "llmms/app/nl_config.h"

#include <algorithm>
#include <cctype>

#include "llmms/common/string_util.h"

namespace llmms::app {
namespace {

// Splits an instruction into clauses on sentence/clause punctuation.
std::vector<std::string> SplitClauses(const std::string& text) {
  std::vector<std::string> clauses;
  std::string current;
  for (char c : text) {
    if (c == '.' || c == ',' || c == ';' || c == '\n') {
      const std::string trimmed = Trim(current);
      if (!trimmed.empty()) clauses.push_back(trimmed);
      current.clear();
    } else {
      current += c;
    }
  }
  const std::string trimmed = Trim(current);
  if (!trimmed.empty()) clauses.push_back(trimmed);
  return clauses;
}

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

bool ContainsAny(const std::string& text,
                 std::initializer_list<const char*> needles) {
  for (const char* n : needles) {
    if (Contains(text, n)) return true;
  }
  return false;
}

// First non-negative integer in the clause, or -1.
int64_t FirstNumber(const std::string& text) {
  for (size_t i = 0; i < text.size(); ++i) {
    if (std::isdigit(static_cast<unsigned char>(text[i]))) {
      return std::strtoll(text.c_str() + i, nullptr, 10);
    }
  }
  return -1;
}

// Matches a model by full name or by its family prefix (text before ':').
std::string MatchModel(const std::string& clause,
                       const std::vector<NlModelInfo>& models) {
  for (const auto& model : models) {
    const std::string lower_name = ToLower(model.name);
    if (Contains(clause, lower_name)) return model.name;
    const size_t colon = lower_name.find(':');
    if (colon != std::string::npos &&
        Contains(clause, lower_name.substr(0, colon))) {
      return model.name;
    }
  }
  return "";
}

void RemoveModel(std::vector<std::string>* models, const std::string& name) {
  models->erase(std::remove(models->begin(), models->end(), name),
                models->end());
}

}  // namespace

StatusOr<NlConfigResult> ApplyNlConfig(
    const std::string& instruction,
    const core::SearchEngine::QueryOptions& base,
    const std::vector<NlModelInfo>& models) {
  NlConfigResult result;
  result.options = base;
  auto& options = result.options;

  // Effective model pool to manipulate.
  std::vector<std::string> pool = options.models;
  if (pool.empty()) {
    for (const auto& m : models) pool.push_back(m.name);
  }

  for (const auto& clause : SplitClauses(ToLower(instruction))) {
    // --- Algorithm selection. ---
    if (ContainsAny(clause, {"bandit", "mab", "ucb"})) {
      options.algorithm = core::Algorithm::kMab;
      result.applied.push_back("algorithm set to MAB (bandit)");
      continue;
    }
    if (Contains(clause, "hybrid")) {
      options.algorithm = core::Algorithm::kHybrid;
      result.applied.push_back("algorithm set to hybrid (OUA screening + UCB)");
      continue;
    }
    if (ContainsAny(clause, {"oua", "overperform", "pruning algorithm"})) {
      options.algorithm = core::Algorithm::kOua;
      result.applied.push_back("algorithm set to OUA");
      continue;
    }

    // --- Token / length budgets. ---
    if (ContainsAny(clause, {"budget", "under", "at most", "shorter than",
                             "no more than"})) {
      const int64_t n = FirstNumber(clause);
      if (n > 0 && (Contains(clause, "token") || Contains(clause, "budget") ||
                    Contains(clause, "word"))) {
        options.token_budget = static_cast<size_t>(n);
        result.applied.push_back("token budget set to " + std::to_string(n));
        continue;
      }
    }

    // --- Scoring emphasis. ---
    if (ContainsAny(clause, {"consensus", "agreement"}) &&
        ContainsAny(clause, {"focus", "prioritize", "emphasize", "weight"})) {
      options.weights.alpha = 0.4;
      options.weights.beta = 0.6;
      result.applied.push_back("scoring weighted toward inter-model agreement");
      continue;
    }
    if (ContainsAny(clause, {"relevance", "similarity", "topicality"}) &&
        ContainsAny(clause, {"focus", "prioritize", "emphasize", "weight"})) {
      options.weights.alpha = 0.9;
      options.weights.beta = 0.1;
      result.applied.push_back("scoring weighted toward query relevance");
      continue;
    }

    // --- Retrieval / history toggles. ---
    if (ContainsAny(clause, {"no retrieval", "disable rag", "without rag",
                             "ignore documents", "ignore the documents",
                             "skip retrieval"})) {
      options.use_rag = false;
      result.applied.push_back("retrieval-augmented generation disabled");
      continue;
    }
    if (ContainsAny(clause, {"no history", "ignore history", "fresh context",
                             "forget the conversation"})) {
      options.use_history = false;
      result.applied.push_back("conversation history disabled");
      continue;
    }

    // --- Speed-based exclusion. ---
    if (ContainsAny(clause, {"avoid slow", "no slow", "skip slow",
                             "exclude slow"}) &&
        models.size() > 1 && pool.size() > 1) {
      const NlModelInfo* slowest = nullptr;
      for (const auto& m : models) {
        const bool in_pool =
            std::find(pool.begin(), pool.end(), m.name) != pool.end();
        if (!in_pool) continue;
        if (slowest == nullptr ||
            m.tokens_per_second < slowest->tokens_per_second) {
          slowest = &m;
        }
      }
      if (slowest != nullptr) {
        RemoveModel(&pool, slowest->name);
        result.applied.push_back("excluded slowest model " + slowest->name);
      }
      continue;
    }

    // --- Model-specific directives. ---
    const std::string mentioned = MatchModel(clause, models);
    if (!mentioned.empty()) {
      if (ContainsAny(clause, {"avoid", "don't use", "do not use", "exclude",
                               "skip", "without"})) {
        RemoveModel(&pool, mentioned);
        result.applied.push_back("excluded " + mentioned);
        continue;
      }
      if (ContainsAny(clause, {"only use", "use only", "just use",
                               "exclusively"})) {
        pool = {mentioned};
        options.algorithm = core::Algorithm::kSingle;
        options.single_model = mentioned;
        result.applied.push_back("using only " + mentioned);
        continue;
      }
      if (ContainsAny(clause, {"prefer", "prioritize", "favor", "lead with"})) {
        RemoveModel(&pool, mentioned);
        pool.insert(pool.begin(), mentioned);
        options.single_model = mentioned;
        result.applied.push_back("prioritized " + mentioned);
        continue;
      }
    }
  }

  if (pool.empty()) {
    return Status::InvalidArgument(
        "instructions exclude every available model");
  }
  options.models = pool;
  return result;
}

}  // namespace llmms::app
