#ifndef LLMMS_APP_REMOTE_MODEL_H_
#define LLMMS_APP_REMOTE_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "llmms/llm/hedged_model.h"
#include "llmms/llm/model.h"

namespace llmms::app {

// Federated model integration (§9.5): a LanguageModel adapter for a model
// hosted behind another LLM-MS node's HTTP API. The remote model stays on
// its own machine; this node registers the adapter like any local model and
// the orchestrators never know the difference — plug-and-play across trust
// boundaries.
//
// Generation semantics are negotiated per peer (DESIGN.md §9). Connect
// reads the peer's /api/model_info; a peer advertising "streaming": true is
// driven over the chunked SSE variant of /api/generate, so chunks surface
// here the moment the peer emits them — true time-to-first-token, and the
// real wire latency of every chunk is charged to Chunk::extra_seconds.
// That latency feeds the simulated-time accounting the orchestrators use
// for budget reallocation, so — unlike the old one-shot fetch — a slow
// federation link now *does* change orchestration decisions, exactly as
// §7.2's mid-generation scoring intends. Peers that do not advertise
// streaming (pre-streaming builds) fall back to the original semantics:
// the full completion is fetched in one POST /api/generate when the first
// chunk is requested and then served locally. Token accounting and stop
// reasons are identical on both paths.
class RemoteModel final : public llm::LanguageModel {
 public:
  // Network-level resilience for the federation link. Transport errors
  // (connection refused/reset, timeouts, HTTP 5xx) are retried up to
  // `max_retries` additional attempts; protocol-level rejections (the node
  // answers but does not serve the model) are permanent and never retried.
  // Mid-stream failures on the streaming path are never retried here —
  // the stream's position would be lost — and instead surface as stream
  // errors for llm::ResilientModel and the orchestrators to quarantine.
  struct TransportOptions {
    size_t max_retries = 2;
    // Socket deadline, real seconds. On the one-shot path it bounds the
    // whole request; on the streaming path it bounds every individual wire
    // wait — a per-chunk deadline. 0 = block indefinitely.
    double timeout_seconds = 5.0;
  };

  // Connects to `host:port`, fetches the remote model's metadata via
  // /api/model_info, and returns the adapter. Fails if the node is
  // unreachable (after retries) or does not serve `remote_name`.
  // `local_name` is how this node addresses the model; empty = use
  // "<remote_name>@<host>:<port>".
  static StatusOr<std::shared_ptr<RemoteModel>> Connect(
      const std::string& host, int port, const std::string& remote_name,
      const std::string& local_name, const TransportOptions& transport);
  static StatusOr<std::shared_ptr<RemoteModel>> Connect(
      const std::string& host, int port, const std::string& remote_name,
      const std::string& local_name = "");

  // One federation peer serving the model.
  struct PeerAddress {
    std::string host;
    int port = 0;
  };

  // Hedged federation (DESIGN.md §10): connects to `primary` plus every
  // peer in `backups` — all serving `remote_name` — and wraps the adapters
  // in a llm::HedgedModel, so a peer with spiky wire latency is raced
  // against its replicas and a peer that dies mid-stream fails over
  // transparently. Each peer is negotiated independently (a streaming
  // primary can be hedged by a one-shot backup; token accounting is
  // identical on both paths, so adoption is seamless). Every peer must be
  // reachable at connect time; `local_name` names the hedged group (empty =
  // derived from the primary).
  static StatusOr<std::shared_ptr<llm::HedgedModel>> ConnectHedged(
      const PeerAddress& primary, const std::vector<PeerAddress>& backups,
      const std::string& remote_name, const std::string& local_name,
      const llm::HedgeConfig& hedge, const TransportOptions& transport);
  static StatusOr<std::shared_ptr<llm::HedgedModel>> ConnectHedged(
      const PeerAddress& primary, const std::vector<PeerAddress>& backups,
      const std::string& remote_name, const std::string& local_name = "",
      const llm::HedgeConfig& hedge = llm::HedgeConfig());

  const std::string& name() const override { return local_name_; }
  uint64_t memory_mb() const override {
    // The weights live on the remote node; locally this adapter is free.
    return 0;
  }
  double tokens_per_second() const override { return tokens_per_second_; }
  size_t context_window() const override { return context_window_; }

  StatusOr<std::unique_ptr<llm::GenerationStream>> StartGeneration(
      const llm::GenerationRequest& request) const override;

  const std::string& remote_name() const { return remote_name_; }

  const TransportOptions& transport() const { return transport_; }

  // True when the peer advertised the streaming /api/generate protocol at
  // Connect time (the negotiation result).
  bool peer_streaming() const { return peer_streaming_; }

 private:
  RemoteModel(std::string host, int port, std::string remote_name,
              std::string local_name, double tokens_per_second,
              size_t context_window, bool peer_streaming,
              TransportOptions transport);

  std::string host_;
  int port_;
  std::string remote_name_;
  std::string local_name_;
  double tokens_per_second_;
  size_t context_window_;
  bool peer_streaming_;
  TransportOptions transport_;
};

}  // namespace llmms::app

#endif  // LLMMS_APP_REMOTE_MODEL_H_
