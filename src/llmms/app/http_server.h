#ifndef LLMMS_APP_HTTP_SERVER_H_
#define LLMMS_APP_HTTP_SERVER_H_

#include <atomic>
#include <memory>
#include <string>
#include <thread>

#include "llmms/app/http.h"
#include "llmms/app/service.h"
#include "llmms/common/thread_pool.h"

namespace llmms::app {

// The production front of the platform (the Flask + Apache/mod_wsgi layer of
// §7.1), as a small HTTP/1.1 server over POSIX sockets:
//
//   * POST/GET to any /api/* endpoint carries a JSON body and returns the
//     ApiService's JSON response.
//   * POST /api/query with `?stream=1` (or `Accept: text/event-stream`)
//     responds with `Content-Type: text/event-stream` and chunked transfer
//     encoding, emitting one SSE frame per orchestration event followed by a
//     final `event: result` frame with the response body — the §7.2 step-7
//     streaming path, for real, over a socket.
//   * POST /api/generate with `?stream=1` streams the completion as one
//     `event: chunk` frame per generated chunk plus a typed terminal frame
//     (`event: done` with stop reason and token accounting, or
//     `event: error` after a mid-generation failure) — the federation
//     streaming wire protocol (DESIGN.md §9). Disabled when the service's
//     streaming_generate flag is off, in which case the request falls
//     through to the one-shot JSON handler like on a pre-streaming node.
//
// One request per connection (`Connection: close`); connections are served
// on a worker pool. Binds 127.0.0.1 only.
class HttpServer {
 public:
  // `service` must outlive the server.
  explicit HttpServer(ApiService* service, size_t num_workers = 4);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Binds and starts accepting. `port` 0 picks an ephemeral port.
  Status Start(int port = 0);

  // Stops accepting and drains in-flight connections.
  void Stop();

  // The bound port (valid after Start succeeds).
  int port() const { return port_; }
  bool running() const { return running_.load(); }

 private:
  void AcceptLoop();
  void HandleConnection(int fd);

  ApiService* service_;
  ThreadPool workers_;
  std::atomic<bool> running_{false};
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread accept_thread_;
};

// Minimal blocking test/demo client: one request, reads to EOF.
// `timeout_seconds` > 0 bounds the connect/send/recv syscalls (SO_SNDTIMEO /
// SO_RCVTIMEO); an expired deadline surfaces as DeadlineExceeded. 0 blocks
// indefinitely (the pre-resilience behaviour).
StatusOr<HttpResponse> HttpFetch(const std::string& host, int port,
                                 const std::string& method,
                                 const std::string& target,
                                 const std::string& body = "",
                                 const std::string& content_type =
                                     "application/json",
                                 double timeout_seconds = 0.0);

// Incremental client for streaming endpoints: sends one request, parses the
// response head eagerly, then surfaces decoded body bytes as they arrive on
// the wire (dechunked when the server uses chunked transfer encoding). This
// is what gives the federation adapter true time-to-first-token — bytes are
// readable the moment the peer flushes them, not when the response ends.
//
// `timeout_seconds` > 0 bounds every individual network wait (connect, send,
// and each Read) — a per-chunk deadline rather than a whole-response one;
// an expired wait surfaces as DeadlineExceeded. A connection that closes
// before the chunked body's terminal frame surfaces as IOError, so a peer
// dying mid-stream is a typed failure, never a hang.
class HttpClientStream {
 public:
  static StatusOr<std::unique_ptr<HttpClientStream>> Open(
      const std::string& host, int port, const std::string& method,
      const std::string& target, const std::string& body,
      const std::string& content_type = "application/json",
      double timeout_seconds = 0.0, bool accept_event_stream = false);

  ~HttpClientStream();
  HttpClientStream(const HttpClientStream&) = delete;
  HttpClientStream& operator=(const HttpClientStream&) = delete;

  // Status line + headers; `head().body` is always empty — body bytes come
  // from Read.
  const HttpResponse& head() const { return head_; }

  // Returns the next decoded body bytes, blocking up to the deadline for
  // the wire. At a clean end of stream it returns an empty string (at most
  // once) and `exhausted()` is true from then on.
  StatusOr<std::string> Read();

  // True once every decoded body byte has been handed out — not merely
  // once the wire framing is complete, which can happen while bytes that
  // arrived alongside the head still wait in the buffer.
  bool exhausted() const { return exhausted_ && pending_.empty(); }

 private:
  HttpClientStream() = default;

  int fd_ = -1;
  HttpResponse head_;
  bool chunked_ = false;
  bool has_content_length_ = false;
  size_t content_remaining_ = 0;
  ChunkedDecoder decoder_;
  std::string pending_;  // decoded bytes that arrived alongside the head
  bool exhausted_ = false;
  double timeout_seconds_ = 0.0;
};

}  // namespace llmms::app

#endif  // LLMMS_APP_HTTP_SERVER_H_
