#ifndef LLMMS_APP_HTTP_SERVER_H_
#define LLMMS_APP_HTTP_SERVER_H_

#include <atomic>
#include <memory>
#include <string>
#include <thread>

#include "llmms/app/http.h"
#include "llmms/app/service.h"
#include "llmms/common/thread_pool.h"

namespace llmms::app {

// The production front of the platform (the Flask + Apache/mod_wsgi layer of
// §7.1), as a small HTTP/1.1 server over POSIX sockets:
//
//   * POST/GET to any /api/* endpoint carries a JSON body and returns the
//     ApiService's JSON response.
//   * POST /api/query with `?stream=1` (or `Accept: text/event-stream`)
//     responds with `Content-Type: text/event-stream` and chunked transfer
//     encoding, emitting one SSE frame per orchestration event followed by a
//     final `event: result` frame with the response body — the §7.2 step-7
//     streaming path, for real, over a socket.
//
// One request per connection (`Connection: close`); connections are served
// on a worker pool. Binds 127.0.0.1 only.
class HttpServer {
 public:
  // `service` must outlive the server.
  explicit HttpServer(ApiService* service, size_t num_workers = 4);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Binds and starts accepting. `port` 0 picks an ephemeral port.
  Status Start(int port = 0);

  // Stops accepting and drains in-flight connections.
  void Stop();

  // The bound port (valid after Start succeeds).
  int port() const { return port_; }
  bool running() const { return running_.load(); }

 private:
  void AcceptLoop();
  void HandleConnection(int fd);

  ApiService* service_;
  ThreadPool workers_;
  std::atomic<bool> running_{false};
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread accept_thread_;
};

// Minimal blocking test/demo client: one request, reads to EOF.
// `timeout_seconds` > 0 bounds the connect/send/recv syscalls (SO_SNDTIMEO /
// SO_RCVTIMEO); an expired deadline surfaces as DeadlineExceeded. 0 blocks
// indefinitely (the pre-resilience behaviour).
StatusOr<HttpResponse> HttpFetch(const std::string& host, int port,
                                 const std::string& method,
                                 const std::string& target,
                                 const std::string& body = "",
                                 const std::string& content_type =
                                     "application/json",
                                 double timeout_seconds = 0.0);

}  // namespace llmms::app

#endif  // LLMMS_APP_HTTP_SERVER_H_
