#ifndef LLMMS_APP_HTTP_SERVER_H_
#define LLMMS_APP_HTTP_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "llmms/app/http.h"
#include "llmms/app/service.h"
#include "llmms/common/deadline.h"
#include "llmms/common/thread_pool.h"

namespace llmms::app {

// Serving-layer knobs: admission control, per-request deadlines, size caps,
// drain behaviour. Every timeout follows the repo's 0-disables idiom.
struct HttpServerOptions {
  // Connections are handled concurrently on this many pool workers.
  size_t num_workers = 4;

  // Admission control: connections accepted but not yet picked up by a
  // worker. Beyond the cap the accept loop sheds the connection immediately
  // with `503 Service Unavailable` + `Retry-After` instead of letting the
  // queue (and every queued client's latency) grow without bound.
  size_t max_queue = 64;
  double retry_after_seconds = 1.0;

  // Per-syscall socket deadlines (SO_RCVTIMEO / SO_SNDTIMEO) on accepted
  // connections. This is what kills a slow-loris client: a peer that
  // trickles its request head (or stops reading its response) costs a
  // worker at most this long per syscall, then gets 408 / the socket
  // closed. 0 = unbounded.
  double socket_timeout_seconds = 10.0;

  // End-to-end wall-clock budget per request. Threaded through the service
  // into the generation loops as a RequestContext; once expired the request
  // unwinds at the next chunk boundary and answers `504 Gateway Timeout`.
  // 0 = unbounded.
  double request_timeout_seconds = 30.0;

  // Stop(): grace period for in-flight and queued requests to finish after
  // the listener closes. Stragglers past it are cancelled through their
  // RequestContext and their sockets shut down.
  double drain_timeout_seconds = 5.0;

  // Request size caps; beyond either the request is rejected with
  // `413 Content Too Large` (before the body is read, when Content-Length
  // announces the overrun).
  size_t max_head_bytes = 64 * 1024;
  size_t max_body_bytes = 8 * 1024 * 1024;

  // Streamed-generation pacing: after flushing an SSE chunk that carries
  // simulated latency (`extra_seconds`, DESIGN.md §9), sleep
  // `pace_scale * extra_seconds` of real time before producing the next
  // chunk — so a remote consumer observes the primary's congestion on the
  // wire instead of receiving the whole response in one burst. The sleep is
  // cancellable (client disconnect / drain). 0 = no pacing (the default:
  // tests and benchmarks want wire speed).
  double pace_scale = 0.0;
};

// Monotonic serving counters plus the two live gauges, shared between the
// server and the /api/health "server" block (which holds them via
// shared_ptr, so a stopped server leaves the last values readable).
struct HttpServerStats {
  std::atomic<size_t> accepted{0};    // connections accept()ed
  std::atomic<size_t> completed{0};   // requests fully handled
  std::atomic<size_t> shed{0};        // 503s from admission control
  std::atomic<size_t> rejected_oversize{0};  // 413s from the size caps
  std::atomic<size_t> timeouts{0};    // 408 (head) + 504 (deadline)
  std::atomic<size_t> cancelled{0};   // client disconnects + drain kills
  std::atomic<size_t> accept_errors{0};  // accept() failures (EMFILE, ...)
  std::atomic<size_t> queued{0};      // gauge: waiting for a worker
  std::atomic<size_t> in_flight{0};   // gauge: being handled right now
  std::atomic<bool> draining{false};

  Json ToJson() const;
};

// The production front of the platform (the Flask + Apache/mod_wsgi layer of
// §7.1), as a small HTTP/1.1 server over POSIX sockets:
//
//   * POST/GET to any /api/* endpoint carries a JSON body and returns the
//     ApiService's JSON response.
//   * POST /api/query with `?stream=1` (or `Accept: text/event-stream`)
//     responds with `Content-Type: text/event-stream` and chunked transfer
//     encoding, emitting one SSE frame per orchestration event followed by a
//     final `event: result` frame with the response body — the §7.2 step-7
//     streaming path, for real, over a socket.
//   * POST /api/generate with `?stream=1` streams the completion as one
//     `event: chunk` frame per generated chunk plus a typed terminal frame
//     (`event: done` with stop reason and token accounting, or
//     `event: error` after a mid-generation failure) — the federation
//     streaming wire protocol (DESIGN.md §9). Disabled when the service's
//     streaming_generate flag is off, in which case the request falls
//     through to the one-shot JSON handler like on a pre-streaming node.
//
// One request per connection (`Connection: close`); connections are served
// concurrently on a worker pool behind a bounded admission queue, each under
// a wall-clock deadline (DESIGN.md §12 has the full threading/locking and
// overload-protection story). Binds 127.0.0.1 only.
class HttpServer {
 public:
  // `service` must outlive the server.
  HttpServer(ApiService* service, const HttpServerOptions& options);
  explicit HttpServer(ApiService* service, size_t num_workers = 4);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Binds and starts accepting. `port` 0 picks an ephemeral port.
  Status Start(int port = 0);

  // Graceful drain: stops accepting, lets in-flight and queued requests
  // finish up to drain_timeout_seconds, then cancels stragglers via their
  // RequestContext (and shuts their sockets down to wake blocked syscalls)
  // before returning.
  void Stop();

  // The bound port (valid after Start succeeds).
  int port() const { return port_; }
  bool running() const { return running_.load(); }

  // Live serving counters (also exported into /api/health as "server").
  const HttpServerStats& stats() const { return *stats_; }
  const HttpServerOptions& options() const { return options_; }

 private:
  void AcceptLoop();
  // Answers shed connections (503 + Retry-After) off the accept thread: the
  // response must be followed by a half-close and a drain of the client's
  // unread request bytes — closing with unread data would RST the
  // connection and destroy the very response that tells the client to back
  // off. That drain blocks briefly, so it must not stall the accept loop.
  void ShedLoop();
  void HandleConnection(int fd, const std::shared_ptr<RequestContext>& ctx);

  // Active-connection registry for drain: every accepted (not shed)
  // connection is tracked from accept to completion so Stop() can cancel
  // whatever outlives the grace period.
  void RegisterConnection(int fd, std::shared_ptr<RequestContext> ctx);
  void UnregisterConnection(int fd);

  ApiService* service_;
  HttpServerOptions options_;
  std::shared_ptr<HttpServerStats> stats_;  // shared with /api/health
  std::atomic<bool> running_{false};
  // Atomic: Stop() closes and clears it while the accept thread is still
  // blocked in accept() on it.
  std::atomic<int> listen_fd_{-1};
  int port_ = 0;
  std::thread accept_thread_;

  std::mutex conn_mu_;  // guards active_; drain_cv_ waits on it
  std::condition_variable drain_cv_;
  std::unordered_map<int, std::shared_ptr<RequestContext>> active_;

  std::thread shed_thread_;
  std::mutex shed_mu_;  // guards shed_fds_ / shed_stop_
  std::condition_variable shed_cv_;
  std::deque<int> shed_fds_;
  bool shed_stop_ = false;

  // Declared last so its destructor (which joins any straggler connection
  // task) runs before the members those tasks touch are destroyed.
  ThreadPool workers_;
};

// Minimal blocking test/demo client: one request, reads to EOF.
// `timeout_seconds` > 0 bounds the connect/send/recv syscalls (SO_SNDTIMEO /
// SO_RCVTIMEO); an expired deadline surfaces as DeadlineExceeded. 0 blocks
// indefinitely (the pre-resilience behaviour).
StatusOr<HttpResponse> HttpFetch(const std::string& host, int port,
                                 const std::string& method,
                                 const std::string& target,
                                 const std::string& body = "",
                                 const std::string& content_type =
                                     "application/json",
                                 double timeout_seconds = 0.0);

// Incremental client for streaming endpoints: sends one request, parses the
// response head eagerly, then surfaces decoded body bytes as they arrive on
// the wire (dechunked when the server uses chunked transfer encoding). This
// is what gives the federation adapter true time-to-first-token — bytes are
// readable the moment the peer flushes them, not when the response ends.
//
// `timeout_seconds` > 0 bounds every individual network wait (connect, send,
// and each Read) — a per-chunk deadline rather than a whole-response one;
// an expired wait surfaces as DeadlineExceeded. A connection that closes
// before the chunked body's terminal frame surfaces as IOError, so a peer
// dying mid-stream is a typed failure, never a hang.
class HttpClientStream {
 public:
  static StatusOr<std::unique_ptr<HttpClientStream>> Open(
      const std::string& host, int port, const std::string& method,
      const std::string& target, const std::string& body,
      const std::string& content_type = "application/json",
      double timeout_seconds = 0.0, bool accept_event_stream = false);

  ~HttpClientStream();
  HttpClientStream(const HttpClientStream&) = delete;
  HttpClientStream& operator=(const HttpClientStream&) = delete;

  // Status line + headers; `head().body` is always empty — body bytes come
  // from Read.
  const HttpResponse& head() const { return head_; }

  // Returns the next decoded body bytes, blocking up to the deadline for
  // the wire. At a clean end of stream it returns an empty string (at most
  // once) and `exhausted()` is true from then on.
  StatusOr<std::string> Read();

  // True once every decoded body byte has been handed out — not merely
  // once the wire framing is complete, which can happen while bytes that
  // arrived alongside the head still wait in the buffer.
  bool exhausted() const { return exhausted_ && pending_.empty(); }

 private:
  HttpClientStream() = default;

  int fd_ = -1;
  HttpResponse head_;
  bool chunked_ = false;
  bool has_content_length_ = false;
  size_t content_remaining_ = 0;
  ChunkedDecoder decoder_;
  std::string pending_;  // decoded bytes that arrived alongside the head
  bool exhausted_ = false;
  double timeout_seconds_ = 0.0;
};

}  // namespace llmms::app

#endif  // LLMMS_APP_HTTP_SERVER_H_
