#include "llmms/app/remote_model.h"

#include <algorithm>
#include <vector>

#include "llmms/app/http_server.h"
#include "llmms/app/sse.h"
#include "llmms/common/json.h"
#include "llmms/common/stopwatch.h"
#include "llmms/common/string_util.h"

namespace llmms::app {
namespace {

// A transport failure is worth another attempt: the node may be restarting,
// the socket may have hit a transient reset, or a proxy returned 5xx.
// Protocol-level errors (NotFound, InvalidArgument, an explicit remote error
// payload) are permanent.
bool IsRetryableTransport(const Status& status) {
  return status.IsIOError() || status.IsDeadlineExceeded();
}

// Runs `call` up to 1 + max_retries times, returning the first success or
// the last error. Only transport-level failures are retried.
template <typename Fn>
auto WithTransportRetries(const RemoteModel::TransportOptions& transport,
                          Fn&& call) -> decltype(call()) {
  decltype(call()) result = call();
  for (size_t attempt = 0;
       attempt < transport.max_retries && !result.ok() &&
       IsRetryableTransport(result.status());
       ++attempt) {
    result = call();
  }
  return result;
}

Json GenerateRequestBody(const std::string& remote_name,
                         const llm::GenerationRequest& request) {
  Json body = Json::MakeObject();
  body.Set("model", remote_name);
  body.Set("prompt", request.prompt);
  if (request.max_tokens > 0) body.Set("max_tokens", request.max_tokens);
  body.Set("seed", request.seed);
  return body;
}

// Shared word-buffer plumbing of both remote stream flavours: completions
// cross the wire as text, are split into whitespace tokens (the unit every
// local accounting path uses), and are served in max_tokens-sized bites.
class RemoteStreamBase : public llm::GenerationStream {
 public:
  const std::string& text() const override { return text_; }
  size_t tokens_generated() const override { return emitted_; }
  bool finished() const override { return finished_; }
  llm::StopReason stop_reason() const override { return stop_reason_; }

 protected:
  // Serves up to max_tokens buffered words as one chunk; `source_done` says
  // whether more words can still arrive (false = the wire has delivered
  // everything).
  llm::Chunk ServeFromBuffer(size_t max_tokens, bool source_done) {
    llm::Chunk chunk;
    const size_t n = std::min(max_tokens, words_.size() - position_);
    for (size_t i = 0; i < n; ++i) {
      if (i > 0) chunk.text += ' ';
      chunk.text += words_[position_ + i];
    }
    position_ += n;
    emitted_ += n;
    chunk.num_tokens = n;
    if (!chunk.text.empty()) {
      if (!text_.empty()) text_ += ' ';
      text_ += chunk.text;
    }
    if (source_done && position_ >= words_.size()) {
      finished_ = true;
      stop_reason_ = remote_stop_reason_;
    }
    chunk.done = finished_;
    chunk.stop_reason = finished_ ? stop_reason_ : llm::StopReason::kLength;
    return chunk;
  }

  size_t buffered() const { return words_.size() - position_; }

  std::vector<std::string> words_;
  llm::StopReason remote_stop_reason_ = llm::StopReason::kStop;
  size_t position_ = 0;
  size_t emitted_ = 0;
  bool finished_ = false;
  llm::StopReason stop_reason_ = llm::StopReason::kLength;
  std::string text_;
};

// Pre-streaming peers: the completion is fetched in one POST /api/generate
// when the first chunk is requested, then served locally (the negotiated
// fallback path).
class OneShotRemoteStream final : public RemoteStreamBase {
 public:
  OneShotRemoteStream(std::string host, int port, std::string remote_name,
                      llm::GenerationRequest request,
                      RemoteModel::TransportOptions transport)
      : host_(std::move(host)),
        port_(port),
        remote_name_(std::move(remote_name)),
        request_(std::move(request)),
        transport_(transport) {}

  StatusOr<llm::Chunk> NextChunk(size_t max_tokens) override {
    if (max_tokens == 0) {
      return Status::InvalidArgument("NextChunk requires max_tokens > 0");
    }
    if (finished_) {
      llm::Chunk chunk;
      chunk.done = true;
      chunk.stop_reason = stop_reason_;
      return chunk;
    }
    double wire_seconds = 0.0;
    if (!fetched_) {
      Stopwatch wire_watch;
      LLMMS_RETURN_NOT_OK(Fetch());
      fetched_ = true;
      wire_seconds = wire_watch.ElapsedSeconds();
      if (words_.empty()) {
        finished_ = true;
        stop_reason_ = remote_stop_reason_;
      }
    }
    llm::Chunk chunk = ServeFromBuffer(max_tokens, /*source_done=*/true);
    chunk.extra_seconds += wire_seconds;
    return chunk;
  }

 private:
  Status Fetch() {
    const Json body = GenerateRequestBody(remote_name_, request_);
    LLMMS_ASSIGN_OR_RETURN(
        auto response,
        WithTransportRetries(transport_, [&]() {
          auto fetched = HttpFetch(host_, port_, "POST", "/api/generate",
                                   body.Dump(), "application/json",
                                   transport_.timeout_seconds);
          // A 5xx is a transport-class failure: the node answered but could
          // not serve; surface it retryably.
          if (fetched.ok() && fetched->status >= 500) {
            return StatusOr<HttpResponse>(Status::IOError(
                "remote generate failed with HTTP " +
                std::to_string(fetched->status)));
          }
          return fetched;
        }));
    if (response.status != 200) {
      return Status::Internal("remote generate failed with HTTP " +
                              std::to_string(response.status) + ": " +
                              response.body);
    }
    LLMMS_ASSIGN_OR_RETURN(Json result, Json::Parse(response.body));
    if (!result["ok"].AsBool()) {
      return Status::Internal("remote generate error: " +
                              result["error"]["message"].AsString());
    }
    words_ = SplitWhitespace(result["text"].AsString());
    remote_stop_reason_ = result["done_reason"].AsString() == "stop"
                              ? llm::StopReason::kStop
                              : llm::StopReason::kLength;
    return Status::OK();
  }

  std::string host_;
  int port_;
  std::string remote_name_;
  llm::GenerationRequest request_;
  RemoteModel::TransportOptions transport_;
  bool fetched_ = false;
};

// Streaming peers: chunks cross the wire as SSE events and surface here the
// moment they arrive. Every NextChunk charges the real seconds it spent
// waiting on the wire (connection setup + time-to-first-token for the first
// chunk, inter-chunk latency afterwards) to Chunk::extra_seconds, so the
// simulated-time accounting sees the true federation cost. Mid-stream
// failures — peer death, an error event, an expired per-chunk deadline —
// are sticky stream errors for the resilience layer to quarantine.
class StreamingRemoteStream final : public RemoteStreamBase {
 public:
  StreamingRemoteStream(std::string host, int port, std::string remote_name,
                        llm::GenerationRequest request,
                        RemoteModel::TransportOptions transport)
      : host_(std::move(host)),
        port_(port),
        remote_name_(std::move(remote_name)),
        request_(std::move(request)),
        transport_(transport) {}

  StatusOr<llm::Chunk> NextChunk(size_t max_tokens) override {
    if (max_tokens == 0) {
      return Status::InvalidArgument("NextChunk requires max_tokens > 0");
    }
    if (!error_.ok()) return error_;  // sticky, like every stream failure
    if (finished_) {
      llm::Chunk chunk;
      chunk.done = true;
      chunk.stop_reason = stop_reason_;
      return chunk;
    }
    Stopwatch wire_watch;
    if (auto status = FillBuffer(); !status.ok()) {
      error_ = status;
      return status;
    }
    const double wire_seconds = wire_watch.ElapsedSeconds();
    llm::Chunk chunk = ServeFromBuffer(max_tokens, wire_done_);
    // Real wire wait plus the *simulated* latency the peer reported for the
    // frames consumed so far — remote congestion (injected spikes, backoff)
    // lands in this chunk's cost, where the local hedging layer can see it.
    chunk.extra_seconds += wire_seconds + pending_remote_seconds_;
    pending_remote_seconds_ = 0.0;
    return chunk;
  }

 private:
  // Pumps the wire until at least one word is buffered or the stream's
  // terminal event has been seen.
  Status FillBuffer() {
    while (buffered() == 0 && !wire_done_) {
      if (wire_ == nullptr) {
        LLMMS_RETURN_NOT_OK(OpenWire());
        continue;  // the head may have carried decoded bytes already
      }
      LLMMS_ASSIGN_OR_RETURN(std::string bytes, wire_->Read());
      if (bytes.empty() && wire_->exhausted()) {
        // The peer closed without the typed terminal event: a death
        // mid-stream, distinct from a clean end of generation.
        return Status::IOError(
            "remote stream from '" + remote_name_ +
            "' closed before its terminal event");
      }
      for (auto& event : decoder_.Feed(bytes)) {
        LLMMS_RETURN_NOT_OK(ConsumeEvent(event));
      }
    }
    return Status::OK();
  }

  // Opens the SSE response, retrying transport failures. A peer that
  // answers with plain JSON despite advertising streaming (e.g. downgraded
  // between Connect and now) is handled by parsing the one-shot payload.
  Status OpenWire() {
    Json body = GenerateRequestBody(remote_name_, request_);
    auto opened = WithTransportRetries(transport_, [&]() {
      auto stream = HttpClientStream::Open(
          host_, port_, "POST", "/api/generate?stream=1", body.Dump(),
          "application/json", transport_.timeout_seconds,
          /*accept_event_stream=*/true);
      if (stream.ok() && (*stream)->head().status >= 500) {
        return StatusOr<std::unique_ptr<HttpClientStream>>(Status::IOError(
            "remote generate failed with HTTP " +
            std::to_string((*stream)->head().status)));
      }
      return stream;
    });
    LLMMS_RETURN_NOT_OK(opened.status());
    wire_ = std::move(opened).value();

    if (wire_->head().status != 200) {
      LLMMS_ASSIGN_OR_RETURN(const std::string payload, ReadAll());
      return Status::Internal("remote generate failed with HTTP " +
                              std::to_string(wire_->head().status) + ": " +
                              payload);
    }
    auto content_type = wire_->head().headers.find("content-type");
    if (content_type == wire_->head().headers.end() ||
        content_type->second.find("text/event-stream") == std::string::npos) {
      // One-shot fallback: the peer ignored the stream negotiation.
      LLMMS_ASSIGN_OR_RETURN(const std::string payload, ReadAll());
      LLMMS_ASSIGN_OR_RETURN(Json result, Json::Parse(payload));
      if (!result["ok"].AsBool()) {
        return Status::Internal("remote generate error: " +
                                result["error"]["message"].AsString());
      }
      words_ = SplitWhitespace(result["text"].AsString());
      remote_stop_reason_ = result["done_reason"].AsString() == "stop"
                                ? llm::StopReason::kStop
                                : llm::StopReason::kLength;
      wire_done_ = true;
    }
    return Status::OK();
  }

  StatusOr<std::string> ReadAll() {
    std::string payload;
    while (!wire_->exhausted()) {
      LLMMS_ASSIGN_OR_RETURN(std::string bytes, wire_->Read());
      payload += bytes;
      if (bytes.empty()) break;
    }
    return payload;
  }

  Status ConsumeEvent(const SseEvent& event) {
    if (wire_done_) return Status::OK();  // ignore frames after terminal
    if (event.event == "chunk") {
      LLMMS_ASSIGN_OR_RETURN(Json data, Json::Parse(event.data));
      for (auto& word : SplitWhitespace(data["text"].AsString())) {
        words_.push_back(std::move(word));
      }
      // Optional field; pre-latency-reporting peers simply omit it.
      pending_remote_seconds_ += data["extra_seconds"].AsDouble();
      return Status::OK();
    }
    if (event.event == "done") {
      LLMMS_ASSIGN_OR_RETURN(Json data, Json::Parse(event.data));
      remote_stop_reason_ = data["done_reason"].AsString() == "stop"
                                ? llm::StopReason::kStop
                                : llm::StopReason::kLength;
      wire_done_ = true;
      return Status::OK();
    }
    if (event.event == "error") {
      auto data = Json::Parse(event.data);
      std::string message = "remote generate error";
      if (data.ok()) {
        message += ": " + (*data)["error"]["message"].AsString();
      }
      return Status::Internal(message);
    }
    return Status::OK();  // unknown frame types are ignored
  }

  std::string host_;
  int port_;
  std::string remote_name_;
  llm::GenerationRequest request_;
  RemoteModel::TransportOptions transport_;

  std::unique_ptr<HttpClientStream> wire_;
  SseDecoder decoder_;
  bool wire_done_ = false;
  // Simulated seconds reported by the peer for not-yet-served frames.
  double pending_remote_seconds_ = 0.0;
  Status error_ = Status::OK();
};

}  // namespace

RemoteModel::RemoteModel(std::string host, int port, std::string remote_name,
                         std::string local_name, double tokens_per_second,
                         size_t context_window, bool peer_streaming,
                         TransportOptions transport)
    : host_(std::move(host)),
      port_(port),
      remote_name_(std::move(remote_name)),
      local_name_(std::move(local_name)),
      tokens_per_second_(tokens_per_second),
      context_window_(context_window),
      peer_streaming_(peer_streaming),
      transport_(transport) {}

StatusOr<std::shared_ptr<RemoteModel>> RemoteModel::Connect(
    const std::string& host, int port, const std::string& remote_name,
    const std::string& local_name) {
  return Connect(host, port, remote_name, local_name, TransportOptions());
}

StatusOr<std::shared_ptr<RemoteModel>> RemoteModel::Connect(
    const std::string& host, int port, const std::string& remote_name,
    const std::string& local_name, const TransportOptions& transport) {
  Json body = Json::MakeObject();
  body.Set("model", remote_name);
  LLMMS_ASSIGN_OR_RETURN(
      auto response,
      WithTransportRetries(transport, [&]() {
        return HttpFetch(host, port, "POST", "/api/model_info", body.Dump(),
                         "application/json", transport.timeout_seconds);
      }));
  LLMMS_ASSIGN_OR_RETURN(Json info, Json::Parse(response.body));
  if (response.status != 200 || !info["ok"].AsBool()) {
    return Status::NotFound("remote node does not serve model '" +
                            remote_name + "'");
  }
  std::string name = local_name;
  if (name.empty()) {
    name = remote_name + "@" + host + ":" + std::to_string(port);
  }
  // Negotiation: pre-streaming peers omit the "streaming" capability field,
  // which reads as false — they are driven through the one-shot path.
  return std::shared_ptr<RemoteModel>(new RemoteModel(
      host, port, remote_name, std::move(name),
      info["tokens_per_second"].AsDouble(),
      static_cast<size_t>(info["context_window"].AsInt()),
      info["streaming"].AsBool(), transport));
}

StatusOr<std::shared_ptr<llm::HedgedModel>> RemoteModel::ConnectHedged(
    const PeerAddress& primary, const std::vector<PeerAddress>& backups,
    const std::string& remote_name, const std::string& local_name,
    const llm::HedgeConfig& hedge) {
  return ConnectHedged(primary, backups, remote_name, local_name, hedge,
                       TransportOptions());
}

StatusOr<std::shared_ptr<llm::HedgedModel>> RemoteModel::ConnectHedged(
    const PeerAddress& primary, const std::vector<PeerAddress>& backups,
    const std::string& remote_name, const std::string& local_name,
    const llm::HedgeConfig& hedge, const TransportOptions& transport) {
  if (backups.empty()) {
    return Status::InvalidArgument(
        "hedged federation needs at least one backup peer");
  }
  LLMMS_ASSIGN_OR_RETURN(auto primary_model,
                         Connect(primary.host, primary.port, remote_name,
                                 local_name, transport));
  std::vector<std::shared_ptr<llm::LanguageModel>> backup_models;
  backup_models.reserve(backups.size());
  for (const PeerAddress& peer : backups) {
    // Backups keep the derived "<model>@<host>:<port>" name so /api/health
    // latency rows identify which peer each percentile belongs to.
    LLMMS_ASSIGN_OR_RETURN(auto backup, Connect(peer.host, peer.port,
                                                remote_name, "", transport));
    backup_models.push_back(std::move(backup));
  }
  return std::make_shared<llm::HedgedModel>(std::move(primary_model),
                                            std::move(backup_models), hedge);
}

StatusOr<std::unique_ptr<llm::GenerationStream>> RemoteModel::StartGeneration(
    const llm::GenerationRequest& request) const {
  if (request.prompt.empty()) {
    return Status::InvalidArgument("prompt must not be empty");
  }
  if (peer_streaming_) {
    return std::unique_ptr<llm::GenerationStream>(
        std::make_unique<StreamingRemoteStream>(host_, port_, remote_name_,
                                                request, transport_));
  }
  return std::unique_ptr<llm::GenerationStream>(
      std::make_unique<OneShotRemoteStream>(host_, port_, remote_name_,
                                            request, transport_));
}

}  // namespace llmms::app
