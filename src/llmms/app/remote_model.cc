#include "llmms/app/remote_model.h"

#include <algorithm>

#include "llmms/app/http_server.h"
#include "llmms/common/json.h"
#include "llmms/common/string_util.h"

namespace llmms::app {
namespace {

// A transport failure is worth another attempt: the node may be restarting,
// the socket may have hit a transient reset, or a proxy returned 5xx.
// Protocol-level errors (NotFound, InvalidArgument, an explicit remote error
// payload) are permanent.
bool IsRetryableTransport(const Status& status) {
  return status.IsIOError() || status.IsDeadlineExceeded();
}

// Runs `call` up to 1 + max_retries times, returning the first success or
// the last error. Only transport-level failures are retried.
template <typename Fn>
auto WithTransportRetries(const RemoteModel::TransportOptions& transport,
                          Fn&& call) -> decltype(call()) {
  decltype(call()) result = call();
  for (size_t attempt = 0;
       attempt < transport.max_retries && !result.ok() &&
       IsRetryableTransport(result.status());
       ++attempt) {
    result = call();
  }
  return result;
}

// Serves chunks from a completion fetched lazily on the first NextChunk.
class RemoteStream final : public llm::GenerationStream {
 public:
  RemoteStream(std::string host, int port, std::string remote_name,
               llm::GenerationRequest request,
               RemoteModel::TransportOptions transport)
      : host_(std::move(host)),
        port_(port),
        remote_name_(std::move(remote_name)),
        request_(std::move(request)),
        transport_(transport) {}

  StatusOr<llm::Chunk> NextChunk(size_t max_tokens) override {
    if (max_tokens == 0) {
      return Status::InvalidArgument("NextChunk requires max_tokens > 0");
    }
    if (!fetched_) {
      LLMMS_RETURN_NOT_OK(Fetch());
      fetched_ = true;
    }
    llm::Chunk chunk;
    if (finished_) {
      chunk.done = true;
      chunk.stop_reason = stop_reason_;
      return chunk;
    }
    const size_t n = std::min(max_tokens, words_.size() - position_);
    for (size_t i = 0; i < n; ++i) {
      if (i > 0) chunk.text += ' ';
      chunk.text += words_[position_ + i];
    }
    position_ += n;
    emitted_ += n;
    chunk.num_tokens = n;
    if (!chunk.text.empty()) {
      if (!text_.empty()) text_ += ' ';
      text_ += chunk.text;
    }
    if (position_ >= words_.size()) {
      finished_ = true;
      stop_reason_ = remote_stop_reason_;
    }
    chunk.done = finished_;
    chunk.stop_reason = finished_ ? stop_reason_ : llm::StopReason::kLength;
    return chunk;
  }

  const std::string& text() const override { return text_; }
  size_t tokens_generated() const override { return emitted_; }
  bool finished() const override { return finished_; }
  llm::StopReason stop_reason() const override { return stop_reason_; }

 private:
  Status Fetch() {
    Json body = Json::MakeObject();
    body.Set("model", remote_name_);
    body.Set("prompt", request_.prompt);
    if (request_.max_tokens > 0) body.Set("max_tokens", request_.max_tokens);
    body.Set("seed", request_.seed);
    LLMMS_ASSIGN_OR_RETURN(
        auto response,
        WithTransportRetries(transport_, [&]() {
          auto fetched = HttpFetch(host_, port_, "POST", "/api/generate",
                                   body.Dump(), "application/json",
                                   transport_.timeout_seconds);
          // A 5xx is a transport-class failure: the node answered but could
          // not serve; surface it retryably.
          if (fetched.ok() && fetched->status >= 500) {
            return StatusOr<HttpResponse>(Status::IOError(
                "remote generate failed with HTTP " +
                std::to_string(fetched->status)));
          }
          return fetched;
        }));
    if (response.status != 200) {
      return Status::Internal("remote generate failed with HTTP " +
                              std::to_string(response.status) + ": " +
                              response.body);
    }
    LLMMS_ASSIGN_OR_RETURN(Json result, Json::Parse(response.body));
    if (!result["ok"].AsBool()) {
      return Status::Internal("remote generate error: " +
                              result["error"]["message"].AsString());
    }
    words_ = SplitWhitespace(result["text"].AsString());
    remote_stop_reason_ = result["done_reason"].AsString() == "stop"
                              ? llm::StopReason::kStop
                              : llm::StopReason::kLength;
    if (words_.empty()) {
      finished_ = true;
      stop_reason_ = remote_stop_reason_;
    }
    return Status::OK();
  }

  std::string host_;
  int port_;
  std::string remote_name_;
  llm::GenerationRequest request_;
  RemoteModel::TransportOptions transport_;

  bool fetched_ = false;
  std::vector<std::string> words_;
  llm::StopReason remote_stop_reason_ = llm::StopReason::kStop;
  size_t position_ = 0;
  size_t emitted_ = 0;
  bool finished_ = false;
  llm::StopReason stop_reason_ = llm::StopReason::kLength;
  std::string text_;
};

}  // namespace

RemoteModel::RemoteModel(std::string host, int port, std::string remote_name,
                         std::string local_name, double tokens_per_second,
                         size_t context_window, TransportOptions transport)
    : host_(std::move(host)),
      port_(port),
      remote_name_(std::move(remote_name)),
      local_name_(std::move(local_name)),
      tokens_per_second_(tokens_per_second),
      context_window_(context_window),
      transport_(transport) {}

StatusOr<std::shared_ptr<RemoteModel>> RemoteModel::Connect(
    const std::string& host, int port, const std::string& remote_name,
    const std::string& local_name) {
  return Connect(host, port, remote_name, local_name, TransportOptions());
}

StatusOr<std::shared_ptr<RemoteModel>> RemoteModel::Connect(
    const std::string& host, int port, const std::string& remote_name,
    const std::string& local_name, const TransportOptions& transport) {
  Json body = Json::MakeObject();
  body.Set("model", remote_name);
  LLMMS_ASSIGN_OR_RETURN(
      auto response,
      WithTransportRetries(transport, [&]() {
        return HttpFetch(host, port, "POST", "/api/model_info", body.Dump(),
                         "application/json", transport.timeout_seconds);
      }));
  LLMMS_ASSIGN_OR_RETURN(Json info, Json::Parse(response.body));
  if (response.status != 200 || !info["ok"].AsBool()) {
    return Status::NotFound("remote node does not serve model '" +
                            remote_name + "'");
  }
  std::string name = local_name;
  if (name.empty()) {
    name = remote_name + "@" + host + ":" + std::to_string(port);
  }
  return std::shared_ptr<RemoteModel>(new RemoteModel(
      host, port, remote_name, std::move(name),
      info["tokens_per_second"].AsDouble(),
      static_cast<size_t>(info["context_window"].AsInt()), transport));
}

StatusOr<std::unique_ptr<llm::GenerationStream>> RemoteModel::StartGeneration(
    const llm::GenerationRequest& request) const {
  if (request.prompt.empty()) {
    return Status::InvalidArgument("prompt must not be empty");
  }
  return std::unique_ptr<llm::GenerationStream>(std::make_unique<RemoteStream>(
      host_, port_, remote_name_, request, transport_));
}

}  // namespace llmms::app
