#ifndef LLMMS_APP_HTTP_H_
#define LLMMS_APP_HTTP_H_

#include <map>
#include <string>
#include <string_view>

#include "llmms/common/result.h"
#include "llmms/common/status.h"

namespace llmms::app {

// Minimal HTTP/1.1 message model shared by the server and the test client.
// One request per connection (the server replies `Connection: close`), which
// keeps the state machine trivial while supporting everything the platform
// needs: JSON request/response plus chunked server-sent-event streaming.

struct HttpRequest {
  std::string method;  // "GET", "POST", ...
  std::string path;    // "/api/query" (query string split off into `query`)
  std::string query;   // raw query string without '?'
  std::map<std::string, std::string> headers;  // lower-cased keys
  std::string body;
};

struct HttpResponse {
  int status = 200;
  std::map<std::string, std::string> headers;  // lower-cased keys
  std::string body;
};

// Parses a complete request (head + body). Fails on malformed input or when
// the body is shorter than Content-Length.
StatusOr<HttpRequest> ParseHttpRequest(std::string_view raw);

// Serializes a response with Content-Length framing.
std::string SerializeHttpResponse(const HttpResponse& response);

// Parses a complete response, decoding chunked transfer encoding when
// present (the client side of SSE streams).
StatusOr<HttpResponse> ParseHttpResponse(std::string_view raw);

// Standard reason phrase for a status code ("OK", "Not Found", ...).
const char* HttpReasonPhrase(int status);

}  // namespace llmms::app

#endif  // LLMMS_APP_HTTP_H_
