#ifndef LLMMS_APP_HTTP_H_
#define LLMMS_APP_HTTP_H_

#include <map>
#include <string>
#include <string_view>

#include "llmms/common/result.h"
#include "llmms/common/status.h"

namespace llmms::app {

// Minimal HTTP/1.1 message model shared by the server and the test client.
// One request per connection (the server replies `Connection: close`), which
// keeps the state machine trivial while supporting everything the platform
// needs: JSON request/response plus chunked server-sent-event streaming.

struct HttpRequest {
  std::string method;  // "GET", "POST", ...
  std::string path;    // "/api/query" (query string split off into `query`)
  std::string query;   // raw query string without '?'
  std::map<std::string, std::string> headers;  // lower-cased keys
  std::string body;
};

struct HttpResponse {
  int status = 200;
  std::map<std::string, std::string> headers;  // lower-cased keys
  std::string body;
};

// Parses a complete request (head + body). Fails on malformed input or when
// the body is shorter than Content-Length.
StatusOr<HttpRequest> ParseHttpRequest(std::string_view raw);

// Serializes a response with Content-Length framing.
std::string SerializeHttpResponse(const HttpResponse& response);

// Parses a complete response, decoding chunked transfer encoding when
// present (the client side of SSE streams).
StatusOr<HttpResponse> ParseHttpResponse(std::string_view raw);

// Parses only the status line and headers of a response — everything before
// the blank line, excluded. Used by the streaming client, which reads the
// body incrementally as it arrives. The returned response's `body` is empty.
StatusOr<HttpResponse> ParseHttpResponseHead(std::string_view head);

// Incremental decoder for HTTP/1.1 chunked transfer encoding: accepts the
// wire in arbitrary slices and appends decoded payload bytes as they become
// available. Once the terminal zero-length chunk is seen `done()` turns true
// and any further bytes (trailers) are ignored.
class ChunkedDecoder {
 public:
  // Consumes `bytes`, appending decoded payload to `out`. Fails with
  // InvalidArgument on malformed framing; the decoder is then poisoned and
  // every further Feed returns the same error.
  Status Feed(std::string_view bytes, std::string* out);

  bool done() const { return state_ == State::kDone; }

 private:
  enum class State { kSizeLine, kData, kDataEnd, kDone, kError };

  State state_ = State::kSizeLine;
  std::string size_line_;   // partial chunk-size line across Feed boundaries
  size_t remaining_ = 0;    // payload bytes left in the current chunk
};

// Standard reason phrase for a status code ("OK", "Not Found", ...).
const char* HttpReasonPhrase(int status);

}  // namespace llmms::app

#endif  // LLMMS_APP_HTTP_H_
