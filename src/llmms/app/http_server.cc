#include "llmms/app/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string_view>

#include "llmms/app/sse.h"
#include "llmms/common/logging.h"
#include "llmms/common/string_util.h"

namespace llmms::app {
namespace {

// Sends all of `data` on `fd`; returns false on error (including an expired
// SO_SNDTIMEO — a peer that stopped reading).
bool SendAll(int fd, std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

void SetSocketTimeouts(int fd, double timeout_seconds) {
  if (timeout_seconds <= 0.0) return;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout_seconds);
  tv.tv_usec = static_cast<suseconds_t>(
      (timeout_seconds - static_cast<double>(tv.tv_sec)) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

// Lingering half-close for responses sent before the request was fully
// consumed (shed 503s, oversize 413s, slow-loris 408s). Closing with unread
// bytes in the receive buffer makes TCP reset the connection, which can
// destroy the in-flight response on the client side — exactly the response
// telling it to back off. Instead: FIN our side, then discard whatever the
// peer still sends until it closes (bounded by the fd's SO_RCVTIMEO).
void HalfCloseAndDrain(int fd) {
  ::shutdown(fd, SHUT_WR);
  char discard[4096];
  while (::recv(fd, discard, sizeof(discard), 0) > 0) {
  }
}

// Reads one full HTTP request (head + Content-Length body) from `fd`.
// Typed failures: DeadlineExceeded when SO_RCVTIMEO expires before the
// request arrives (a slow-loris peer trickling bytes slower than the socket
// deadline), ResourceExhausted when the head exceeds `max_head_bytes` or the
// announced/observed body exceeds `max_body_bytes` — checked as soon as the
// head (and its Content-Length) is parsed, so an oversized upload is
// rejected before its body is pulled off the wire.
StatusOr<std::string> ReadRequest(int fd, size_t max_head_bytes,
                                  size_t max_body_bytes) {
  std::string buffer;
  char chunk[4096];
  size_t body_needed = std::string::npos;
  size_t head_end = std::string::npos;
  for (;;) {
    if (head_end != std::string::npos &&
        buffer.size() >= head_end + 4 + (body_needed == std::string::npos
                                             ? 0
                                             : body_needed)) {
      return buffer;
    }
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::DeadlineExceeded(
            "request not received within the socket deadline");
      }
      return Status::IOError("recv failed");
    }
    if (n == 0) {
      if (head_end != std::string::npos) return buffer;
      return Status::IOError("connection closed before request head");
    }
    buffer.append(chunk, static_cast<size_t>(n));
    if (head_end == std::string::npos) {
      head_end = buffer.find("\r\n\r\n");
      if (head_end == std::string::npos) {
        if (buffer.size() > max_head_bytes) {
          return Status::ResourceExhausted(
              "request head exceeds " + std::to_string(max_head_bytes) +
              " bytes");
        }
        continue;
      }
      if (head_end > max_head_bytes) {
        return Status::ResourceExhausted(
            "request head exceeds " + std::to_string(max_head_bytes) +
            " bytes");
      }
      // Extract content-length from the (lower-cased) head.
      body_needed = 0;
      std::string head = buffer.substr(0, head_end);
      for (char& c : head) {
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      }
      const size_t pos = head.find("content-length:");
      if (pos != std::string::npos) {
        body_needed = static_cast<size_t>(std::strtoull(
            head.c_str() + pos + strlen("content-length:"), nullptr, 10));
      }
      if (body_needed != std::string::npos && body_needed > max_body_bytes) {
        return Status::ResourceExhausted(
            "request body of " + std::to_string(body_needed) +
            " bytes exceeds the " + std::to_string(max_body_bytes) +
            "-byte limit");
      }
    }
    // Defence in depth for peers that send more body than they announced.
    if (buffer.size() > max_head_bytes + 4 + max_body_bytes) {
      return Status::ResourceExhausted("request too large");
    }
  }
}

std::string ChunkEncode(std::string_view data) {
  char size_line[32];
  std::snprintf(size_line, sizeof(size_line), "%zx\r\n", data.size());
  std::string out = size_line;
  out += data;
  out += "\r\n";
  return out;
}

bool WantsStream(const HttpRequest& request) {
  if (request.query.find("stream=1") != std::string::npos) return true;
  auto it = request.headers.find("accept");
  return it != request.headers.end() &&
         it->second.find("text/event-stream") != std::string::npos;
}

// The response head every SSE stream starts with.
constexpr const char kSseHead[] =
    "HTTP/1.1 200 OK\r\n"
    "content-type: text/event-stream\r\n"
    "cache-control: no-cache\r\n"
    "transfer-encoding: chunked\r\n"
    "connection: close\r\n\r\n";

// Maps a service error payload's status-code name to the HTTP status the
// front door answers with. Anything unmapped stays a client-ish 400, which
// is what every error answered before typed serving codes existed.
int HttpStatusForError(const Json& result) {
  const std::string code = result["error"]["code"].AsString();
  if (code == "NotFound") return 404;
  if (code == "DeadlineExceeded") return 504;
  if (code == "Cancelled") return 503;
  if (code == "ResourceExhausted") return 413;
  return 400;
}

// Opens a TCP connection to host:port with optional send/recv deadlines.
StatusOr<int> ConnectSocket(const std::string& host, int port,
                            double timeout_seconds) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOError("socket() failed");
  SetSocketTimeouts(fd, timeout_seconds);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::IOError("connect() failed to " + host + ":" +
                           std::to_string(port));
  }
  return fd;
}

std::string SerializeHttpRequest(const std::string& host,
                                 const std::string& method,
                                 const std::string& target,
                                 const std::string& body,
                                 const std::string& content_type,
                                 bool accept_event_stream) {
  std::string request = method + " " + target + " HTTP/1.1\r\n";
  request += "host: " + host + "\r\n";
  request += "content-type: " + content_type + "\r\n";
  request += "content-length: " + std::to_string(body.size()) + "\r\n";
  if (accept_event_stream) request += "accept: text/event-stream\r\n";
  request += "connection: close\r\n\r\n";
  request += body;
  return request;
}

}  // namespace

Json HttpServerStats::ToJson() const {
  Json out = Json::MakeObject();
  out.Set("accepted", accepted.load());
  out.Set("completed", completed.load());
  out.Set("shed", shed.load());
  out.Set("rejected_oversize", rejected_oversize.load());
  out.Set("timeouts", timeouts.load());
  out.Set("cancelled", cancelled.load());
  out.Set("accept_errors", accept_errors.load());
  out.Set("queued", queued.load());
  out.Set("in_flight", in_flight.load());
  out.Set("draining", draining.load());
  return out;
}

HttpServer::HttpServer(ApiService* service, const HttpServerOptions& options)
    : service_(service),
      options_(options),
      stats_(std::make_shared<HttpServerStats>()),
      workers_(std::max<size_t>(1, options.num_workers)) {}

HttpServer::HttpServer(ApiService* service, size_t num_workers)
    : HttpServer(service, [num_workers] {
        HttpServerOptions options;
        options.num_workers = num_workers;
        return options;
      }()) {}

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start(int port) {
  if (running_.load()) return Status::FailedPrecondition("already running");
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOError("socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::IOError("bind() failed on port " + std::to_string(port));
  }
  if (::listen(fd, 64) != 0) {
    ::close(fd);
    return Status::IOError("listen() failed");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  listen_fd_.store(fd);
  stats_->draining.store(false);
  // /api/health's "server" block. The closure owns the stats struct, so the
  // last counters stay readable after the server stops or is destroyed.
  if (service_ != nullptr) {
    auto stats = stats_;
    service_->SetServerStats([stats]() { return stats->ToJson(); });
  }
  {
    std::lock_guard<std::mutex> lock(shed_mu_);
    shed_stop_ = false;
  }
  running_.store(true);
  shed_thread_ = std::thread([this]() { ShedLoop(); });
  accept_thread_ = std::thread([this]() { AcceptLoop(); });
  return Status::OK();
}

void HttpServer::Stop() {
  if (!running_.exchange(false)) return;
  stats_->draining.store(true);

  // 1. Stop accepting: new connections are refused at the TCP layer. The
  // exchange publishes the cleared fd to the accept thread, which may still
  // be blocked in accept() on it (shutdown wakes it).
  if (const int listen = listen_fd_.exchange(-1); listen >= 0) {
    ::shutdown(listen, SHUT_RDWR);
    ::close(listen);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard<std::mutex> lock(shed_mu_);
    shed_stop_ = true;
  }
  shed_cv_.notify_all();
  if (shed_thread_.joinable()) shed_thread_.join();

  // 2. Grace period: queued and in-flight requests run to completion.
  const auto drain_deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(
              std::max(0.0, options_.drain_timeout_seconds)));
  std::unique_lock<std::mutex> lock(conn_mu_);
  drain_cv_.wait_until(lock, drain_deadline,
                       [this]() { return active_.empty(); });

  // 3. Stragglers: cancel their contexts (generation loops unwind at the
  // next chunk boundary) and shut their sockets down so any thread blocked
  // in recv/send wakes immediately. Shutdown happens under conn_mu_, before
  // the owning worker can unregister-and-close, so the fd cannot have been
  // reused.
  for (auto& [fd, ctx] : active_) {
    if (ctx != nullptr) ctx->Cancel("server shutting down");
    ::shutdown(fd, SHUT_RDWR);
    stats_->cancelled.fetch_add(1);
  }

  // 4. Bounded second wait for the cancelled stragglers to unwind. The
  // ThreadPool destructor would join anyway; waiting here keeps Stop()'s
  // contract — no request is still touching the service when it returns.
  drain_cv_.wait_for(lock, std::chrono::seconds(10),
                     [this]() { return active_.empty(); });
  if (!active_.empty()) {
    LLMMS_LOGS(Warning) << "http: " << active_.size()
                        << " connection(s) did not unwind within the drain "
                           "deadline";
  }
}

void HttpServer::RegisterConnection(int fd,
                                    std::shared_ptr<RequestContext> ctx) {
  std::lock_guard<std::mutex> lock(conn_mu_);
  active_[fd] = std::move(ctx);
}

void HttpServer::UnregisterConnection(int fd) {
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    active_.erase(fd);
  }
  drain_cv_.notify_all();
}

void HttpServer::AcceptLoop() {
  bool in_error_burst = false;
  while (running_.load()) {
    const int fd = ::accept(listen_fd_.load(), nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load()) break;
      // Transient accept failures (EMFILE/ENFILE under fd pressure, ECONNABORTED,
      // EINTR) must not busy-spin the accept thread at 100% CPU: back off
      // briefly, and log once per burst rather than once per failure.
      stats_->accept_errors.fetch_add(1);
      if (!in_error_burst) {
        in_error_burst = true;
        LLMMS_LOGS(Warning) << "http: accept() failed (errno " << errno
                            << ": " << std::strerror(errno)
                            << "); backing off";
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    in_error_burst = false;
    stats_->accepted.fetch_add(1);

    // Admission control: a connection beyond the pending-queue cap is shed
    // with 503 + Retry-After instead of joining a queue whose wait already
    // exceeds anything a client would tolerate. The response itself is sent
    // by the shed thread — it must linger to drain the client's unread
    // request bytes, which would stall this loop.
    if (stats_->queued.load() >= options_.max_queue) {
      stats_->shed.fetch_add(1);
      {
        std::lock_guard<std::mutex> lock(shed_mu_);
        shed_fds_.push_back(fd);
      }
      shed_cv_.notify_one();
      continue;
    }

    SetSocketTimeouts(fd, options_.socket_timeout_seconds);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    // The request's wall-clock budget starts at admission, so time spent
    // waiting for a worker counts against it.
    auto ctx = options_.request_timeout_seconds > 0.0
                   ? RequestContext::WithTimeout(
                         options_.request_timeout_seconds)
                   : RequestContext::Unbounded();
    RegisterConnection(fd, ctx);
    stats_->queued.fetch_add(1);
    workers_.Submit([this, fd, ctx]() {
      stats_->queued.fetch_sub(1);
      stats_->in_flight.fetch_add(1);
      HandleConnection(fd, ctx);
      stats_->in_flight.fetch_sub(1);
      stats_->completed.fetch_add(1);
      UnregisterConnection(fd);
      ::close(fd);
    });
  }
}

void HttpServer::ShedLoop() {
  HttpResponse response;
  response.status = 503;
  response.headers["content-type"] = "application/json";
  response.headers["retry-after"] = std::to_string(static_cast<long>(
      std::ceil(std::max(0.0, options_.retry_after_seconds))));
  Json error = Json::MakeObject();
  error.Set("ok", false);
  error.Set("message", "server overloaded; retry later");
  response.body = error.Dump();
  const std::string wire = SerializeHttpResponse(response);

  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(shed_mu_);
      shed_cv_.wait(lock,
                    [this]() { return shed_stop_ || !shed_fds_.empty(); });
      if (shed_fds_.empty()) return;  // stopped and queue empty
      fd = shed_fds_.front();
      shed_fds_.pop_front();
      // On shutdown, just close the backlog — the clients are being
      // refused at the listener anyway.
      if (shed_stop_) {
        ::close(fd);
        continue;
      }
    }
    // The drain is bounded: a peer that neither finishes its request nor
    // closes holds this (one) thread for at most the timeout, and the worst
    // it can do is delay other shed *responses* — admission decisions and
    // real traffic are unaffected.
    SetSocketTimeouts(fd, std::min(std::max(options_.socket_timeout_seconds,
                                            0.1),
                                   1.0));
    if (SendAll(fd, wire)) HalfCloseAndDrain(fd);
    ::close(fd);
  }
}

void HttpServer::HandleConnection(int fd,
                                  const std::shared_ptr<RequestContext>& ctx) {
  auto fail = [fd](int status, const std::string& message,
                   const std::string& extra_header = "") {
    HttpResponse response;
    response.status = status;
    response.headers["content-type"] = "application/json";
    if (!extra_header.empty()) {
      const size_t colon = extra_header.find(':');
      response.headers[extra_header.substr(0, colon)] =
          extra_header.substr(colon + 1);
    }
    Json error = Json::MakeObject();
    error.Set("ok", false);
    error.Set("message", message);
    response.body = error.Dump();
    SendAll(fd, SerializeHttpResponse(response));
  };

  // The connection may have aged out (or been drain-cancelled) while it sat
  // in the admission queue; answer without touching the service. The
  // request was never read, so linger-drain before the caller closes.
  if (const Status admitted = ctx->Check(); !admitted.ok()) {
    if (admitted.IsDeadlineExceeded()) {
      stats_->timeouts.fetch_add(1);
      fail(504, admitted.message());
    } else {
      fail(503, admitted.message());
    }
    HalfCloseAndDrain(fd);
    return;
  }

  auto raw = ReadRequest(fd, options_.max_head_bytes, options_.max_body_bytes);
  if (!raw.ok()) {
    if (raw.status().IsResourceExhausted()) {
      stats_->rejected_oversize.fetch_add(1);
      fail(413, raw.status().message());
      // Rejected before the body was consumed: linger-drain so the reset
      // from closing on unread bytes cannot destroy the 413 in flight.
      HalfCloseAndDrain(fd);
    } else if (raw.status().IsDeadlineExceeded()) {
      // Slow-loris: the peer held a worker without delivering a request
      // within the socket deadline.
      stats_->timeouts.fetch_add(1);
      fail(408, raw.status().message());
      HalfCloseAndDrain(fd);
    }
    // IOError (peer vanished before sending anything): nothing to answer.
    return;
  }
  auto request = ParseHttpRequest(*raw);
  if (!request.ok()) {
    fail(400, request.status().message());
    return;
  }
  if (request->method != "GET" && request->method != "POST") {
    fail(405, "method not allowed");
    return;
  }

  Json payload = Json::MakeObject();
  if (!request->body.empty()) {
    auto parsed = Json::Parse(request->body);
    if (!parsed.ok()) {
      fail(400, "invalid JSON body: " + parsed.status().message());
      return;
    }
    payload = std::move(parsed).value();
  }

  if (request->path == "/api/query" && WantsStream(*request)) {
    // SSE: send the head, then one chunk per event, then the result frame.
    if (!SendAll(fd, kSseHead)) return;
    size_t frame_id = 0;
    Json result = service_->HandleQuery(
        payload,
        [this, fd, ctx, &frame_id](const Json& event) {
          if (ctx->cancelled()) return;
          SseEvent sse;
          sse.event = "orchestration";
          sse.id = std::to_string(frame_id++);
          sse.data = event.Dump();
          if (!SendAll(fd, ChunkEncode(EncodeSse(sse)))) {
            // The client went away (or stopped reading past the send
            // deadline); cancel so the orchestration loop unwinds at the
            // next chunk boundary instead of generating for nobody.
            stats_->cancelled.fetch_add(1);
            ctx->Cancel("client disconnected mid-stream");
          }
        },
        ctx);
    if (!result["ok"].AsBool() &&
        result["error"]["code"].AsString() == "DeadlineExceeded") {
      stats_->timeouts.fetch_add(1);
    }
    SseEvent final_frame;
    final_frame.event = "result";
    final_frame.data = result.Dump();
    SendAll(fd, ChunkEncode(EncodeSse(final_frame)));
    SendAll(fd, "0\r\n\r\n");
    return;
  }

  if (request->path == "/api/generate" && WantsStream(*request) &&
      service_->streaming_generate()) {
    // Federation streaming wire protocol (DESIGN.md §9): one `chunk` frame
    // per generated chunk, then a typed terminal frame — `done` carrying
    // stop reason + token accounting, or `error` carrying the failure. A
    // node with streaming_generate disabled never reaches this branch; the
    // request falls through to the one-shot JSON path below, exactly like a
    // pre-streaming peer ignoring the stream parameter.
    if (!SendAll(fd, kSseHead)) return;
    size_t frame_id = 0;
    Json result = service_->HandleGenerateStream(
        payload,
        [this, fd, ctx, &frame_id](const Json& event) {
          if (ctx->cancelled()) return;
          SseEvent sse;
          sse.event = "chunk";
          sse.id = std::to_string(frame_id++);
          sse.data = event.Dump();
          if (!SendAll(fd, ChunkEncode(EncodeSse(sse)))) {
            stats_->cancelled.fetch_add(1);
            ctx->Cancel("client disconnected mid-stream");
            return;
          }
          // Real pacing (ROADMAP): each chunk's simulated latency already
          // rides the frame as `extra_seconds`; with pace_scale > 0 the
          // flushed frame is followed by a scaled real-time delay, so a
          // consumer sees the primary's congestion on the wire instead of
          // one terminal burst. SleepFor is cancellable — a disconnect or
          // drain cuts the pacing short along with the generation.
          if (options_.pace_scale > 0.0 && event.Contains("extra_seconds")) {
            (void)ctx->SleepFor(event["extra_seconds"].AsDouble() *
                                options_.pace_scale);
          }
        },
        ctx);
    if (!result["ok"].AsBool() &&
        result["error"]["code"].AsString() == "DeadlineExceeded") {
      stats_->timeouts.fetch_add(1);
    }
    SseEvent final_frame;
    final_frame.event = result["ok"].AsBool() ? "done" : "error";
    final_frame.data = result.Dump();
    SendAll(fd, ChunkEncode(EncodeSse(final_frame)));
    SendAll(fd, "0\r\n\r\n");
    return;
  }

  const Json result =
      service_->Handle(request->path, payload, StreamCallback(), ctx);
  HttpResponse response;
  response.status = result["ok"].AsBool() ? 200 : HttpStatusForError(result);
  if (response.status == 504) stats_->timeouts.fetch_add(1);
  response.headers["content-type"] = "application/json";
  response.body = result.Dump();
  SendAll(fd, SerializeHttpResponse(response));
}

StatusOr<HttpResponse> HttpFetch(const std::string& host, int port,
                                 const std::string& method,
                                 const std::string& target,
                                 const std::string& body,
                                 const std::string& content_type,
                                 double timeout_seconds) {
  LLMMS_ASSIGN_OR_RETURN(const int fd,
                         ConnectSocket(host, port, timeout_seconds));
  const std::string request = SerializeHttpRequest(
      host, method, target, body, content_type, /*accept_event_stream=*/false);
  if (!SendAll(fd, request)) {
    ::close(fd);
    return Status::IOError("send failed");
  }
  std::string raw;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      ::close(fd);
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::DeadlineExceeded("recv timed out after " +
                                        std::to_string(timeout_seconds) +
                                        "s");
      }
      return Status::IOError("recv failed");
    }
    if (n == 0) break;
    raw.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  return ParseHttpResponse(raw);
}

StatusOr<std::unique_ptr<HttpClientStream>> HttpClientStream::Open(
    const std::string& host, int port, const std::string& method,
    const std::string& target, const std::string& body,
    const std::string& content_type, double timeout_seconds,
    bool accept_event_stream) {
  LLMMS_ASSIGN_OR_RETURN(const int fd,
                         ConnectSocket(host, port, timeout_seconds));
  auto stream = std::unique_ptr<HttpClientStream>(new HttpClientStream());
  stream->fd_ = fd;
  stream->timeout_seconds_ = timeout_seconds;
  const std::string request = SerializeHttpRequest(
      host, method, target, body, content_type, accept_event_stream);
  if (!SendAll(fd, request)) {
    return Status::IOError("send failed");  // destructor closes the socket
  }

  // Read until the head is complete; whatever body bytes arrive with it are
  // decoded into pending_ for the first Read.
  std::string raw;
  char buffer[4096];
  size_t head_end = std::string::npos;
  while (head_end == std::string::npos) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::DeadlineExceeded(
            "response head not received within " +
            std::to_string(timeout_seconds) + "s");
      }
      return Status::IOError("recv failed reading response head");
    }
    if (n == 0) {
      return Status::IOError("connection closed before response head");
    }
    raw.append(buffer, static_cast<size_t>(n));
    head_end = raw.find("\r\n\r\n");
    if (raw.size() > (1u << 20)) {
      return Status::ResourceExhausted("response head too large");
    }
  }
  LLMMS_ASSIGN_OR_RETURN(stream->head_,
                         ParseHttpResponseHead(raw.substr(0, head_end)));
  auto te = stream->head_.headers.find("transfer-encoding");
  stream->chunked_ =
      te != stream->head_.headers.end() && ToLower(te->second) == "chunked";
  auto cl = stream->head_.headers.find("content-length");
  if (cl != stream->head_.headers.end()) {
    stream->has_content_length_ = true;
    stream->content_remaining_ =
        static_cast<size_t>(std::strtoull(cl->second.c_str(), nullptr, 10));
  }

  const std::string_view rest = std::string_view(raw).substr(head_end + 4);
  if (stream->chunked_) {
    LLMMS_RETURN_NOT_OK(stream->decoder_.Feed(rest, &stream->pending_));
    if (stream->decoder_.done()) stream->exhausted_ = true;
  } else if (stream->has_content_length_) {
    const size_t take = std::min(rest.size(), stream->content_remaining_);
    stream->pending_.append(rest.substr(0, take));
    stream->content_remaining_ -= take;
    if (stream->content_remaining_ == 0) stream->exhausted_ = true;
  } else {
    stream->pending_.append(rest);  // close-delimited
  }
  return stream;
}

HttpClientStream::~HttpClientStream() {
  if (fd_ >= 0) ::close(fd_);
}

StatusOr<std::string> HttpClientStream::Read() {
  if (!pending_.empty()) {
    std::string out;
    out.swap(pending_);
    return out;
  }
  if (exhausted_) return std::string();

  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::DeadlineExceeded("no stream data within " +
                                        std::to_string(timeout_seconds_) +
                                        "s");
      }
      return Status::IOError("recv failed mid-stream");
    }
    if (n == 0) {
      // Peer closed. Clean only if the framing says the body is complete.
      if (chunked_ && !decoder_.done()) {
        return Status::IOError("connection closed mid-stream");
      }
      if (has_content_length_ && content_remaining_ > 0) {
        return Status::IOError("connection closed before content-length");
      }
      exhausted_ = true;
      return std::string();
    }
    const std::string_view bytes(buffer, static_cast<size_t>(n));
    std::string out;
    if (chunked_) {
      LLMMS_RETURN_NOT_OK(decoder_.Feed(bytes, &out));
      if (decoder_.done()) exhausted_ = true;
      // Framing-only bytes decode to nothing; keep reading until payload,
      // end of stream, or deadline.
      if (out.empty() && !exhausted_) continue;
      return out;
    }
    if (has_content_length_) {
      const size_t take = std::min(bytes.size(), content_remaining_);
      out.append(bytes.substr(0, take));
      content_remaining_ -= take;
      if (content_remaining_ == 0) exhausted_ = true;
      return out;
    }
    return std::string(bytes);  // close-delimited
  }
}

}  // namespace llmms::app
