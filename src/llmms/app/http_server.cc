#include "llmms/app/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <string_view>

#include "llmms/app/sse.h"
#include "llmms/common/logging.h"
#include "llmms/common/string_util.h"

namespace llmms::app {
namespace {

// Sends all of `data` on `fd`; returns false on error.
bool SendAll(int fd, std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

// Reads one full HTTP request (head + Content-Length body) from `fd`.
StatusOr<std::string> ReadRequest(int fd) {
  std::string buffer;
  char chunk[4096];
  size_t body_needed = std::string::npos;
  size_t head_end = std::string::npos;
  for (;;) {
    if (head_end != std::string::npos &&
        buffer.size() >= head_end + 4 + (body_needed == std::string::npos
                                             ? 0
                                             : body_needed)) {
      return buffer;
    }
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) return Status::IOError("recv failed");
    if (n == 0) {
      if (head_end != std::string::npos) return buffer;
      return Status::IOError("connection closed before request head");
    }
    buffer.append(chunk, static_cast<size_t>(n));
    if (head_end == std::string::npos) {
      head_end = buffer.find("\r\n\r\n");
      if (head_end != std::string::npos) {
        // Extract content-length from the (lower-cased) head.
        body_needed = 0;
        std::string head = buffer.substr(0, head_end);
        for (char& c : head) {
          c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
        }
        const size_t pos = head.find("content-length:");
        if (pos != std::string::npos) {
          body_needed = static_cast<size_t>(std::strtoull(
              head.c_str() + pos + strlen("content-length:"), nullptr, 10));
        }
      }
    }
    if (buffer.size() > (16u << 20)) {
      return Status::ResourceExhausted("request too large");
    }
  }
}

std::string ChunkEncode(std::string_view data) {
  char size_line[32];
  std::snprintf(size_line, sizeof(size_line), "%zx\r\n", data.size());
  std::string out = size_line;
  out += data;
  out += "\r\n";
  return out;
}

bool WantsStream(const HttpRequest& request) {
  if (request.query.find("stream=1") != std::string::npos) return true;
  auto it = request.headers.find("accept");
  return it != request.headers.end() &&
         it->second.find("text/event-stream") != std::string::npos;
}

// The response head every SSE stream starts with.
constexpr const char kSseHead[] =
    "HTTP/1.1 200 OK\r\n"
    "content-type: text/event-stream\r\n"
    "cache-control: no-cache\r\n"
    "transfer-encoding: chunked\r\n"
    "connection: close\r\n\r\n";

// Opens a TCP connection to host:port with optional send/recv deadlines.
StatusOr<int> ConnectSocket(const std::string& host, int port,
                            double timeout_seconds) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOError("socket() failed");
  if (timeout_seconds > 0.0) {
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(timeout_seconds);
    tv.tv_usec = static_cast<suseconds_t>(
        (timeout_seconds - static_cast<double>(tv.tv_sec)) * 1e6);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::IOError("connect() failed to " + host + ":" +
                           std::to_string(port));
  }
  return fd;
}

std::string SerializeHttpRequest(const std::string& host,
                                 const std::string& method,
                                 const std::string& target,
                                 const std::string& body,
                                 const std::string& content_type,
                                 bool accept_event_stream) {
  std::string request = method + " " + target + " HTTP/1.1\r\n";
  request += "host: " + host + "\r\n";
  request += "content-type: " + content_type + "\r\n";
  request += "content-length: " + std::to_string(body.size()) + "\r\n";
  if (accept_event_stream) request += "accept: text/event-stream\r\n";
  request += "connection: close\r\n\r\n";
  request += body;
  return request;
}

}  // namespace

HttpServer::HttpServer(ApiService* service, size_t num_workers)
    : service_(service), workers_(num_workers) {}

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start(int port) {
  if (running_.load()) return Status::FailedPrecondition("already running");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::IOError("socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError("bind() failed on port " + std::to_string(port));
  }
  if (::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError("listen() failed");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  }
  running_.store(true);
  accept_thread_ = std::thread([this]() { AcceptLoop(); });
  return Status::OK();
}

void HttpServer::Stop() {
  if (!running_.exchange(false)) return;
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
}

void HttpServer::AcceptLoop() {
  while (running_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load()) break;
      continue;
    }
    workers_.Submit([this, fd]() { HandleConnection(fd); });
  }
}

void HttpServer::HandleConnection(int fd) {
  auto fail = [fd](int status, const std::string& message) {
    HttpResponse response;
    response.status = status;
    response.headers["content-type"] = "application/json";
    Json error = Json::MakeObject();
    error.Set("ok", false);
    error.Set("message", message);
    response.body = error.Dump();
    SendAll(fd, SerializeHttpResponse(response));
  };

  auto raw = ReadRequest(fd);
  if (!raw.ok()) {
    ::close(fd);
    return;
  }
  auto request = ParseHttpRequest(*raw);
  if (!request.ok()) {
    fail(400, request.status().message());
    ::close(fd);
    return;
  }
  if (request->method != "GET" && request->method != "POST") {
    fail(405, "method not allowed");
    ::close(fd);
    return;
  }

  Json payload = Json::MakeObject();
  if (!request->body.empty()) {
    auto parsed = Json::Parse(request->body);
    if (!parsed.ok()) {
      fail(400, "invalid JSON body: " + parsed.status().message());
      ::close(fd);
      return;
    }
    payload = std::move(parsed).value();
  }

  if (request->path == "/api/query" && WantsStream(*request)) {
    // SSE: send the head, then one chunk per event, then the result frame.
    if (!SendAll(fd, kSseHead)) {
      ::close(fd);
      return;
    }
    size_t frame_id = 0;
    Json result = service_->HandleQuery(
        payload, [fd, &frame_id](const Json& event) {
          SseEvent sse;
          sse.event = "orchestration";
          sse.id = std::to_string(frame_id++);
          sse.data = event.Dump();
          SendAll(fd, ChunkEncode(EncodeSse(sse)));
        });
    SseEvent final_frame;
    final_frame.event = "result";
    final_frame.data = result.Dump();
    SendAll(fd, ChunkEncode(EncodeSse(final_frame)));
    SendAll(fd, "0\r\n\r\n");
    ::close(fd);
    return;
  }

  if (request->path == "/api/generate" && WantsStream(*request) &&
      service_->streaming_generate()) {
    // Federation streaming wire protocol (DESIGN.md §9): one `chunk` frame
    // per generated chunk, then a typed terminal frame — `done` carrying
    // stop reason + token accounting, or `error` carrying the failure. A
    // node with streaming_generate disabled never reaches this branch; the
    // request falls through to the one-shot JSON path below, exactly like a
    // pre-streaming peer ignoring the stream parameter.
    if (!SendAll(fd, kSseHead)) {
      ::close(fd);
      return;
    }
    size_t frame_id = 0;
    Json result = service_->HandleGenerateStream(
        payload, [fd, &frame_id](const Json& event) {
          SseEvent sse;
          sse.event = "chunk";
          sse.id = std::to_string(frame_id++);
          sse.data = event.Dump();
          SendAll(fd, ChunkEncode(EncodeSse(sse)));
        });
    SseEvent final_frame;
    final_frame.event = result["ok"].AsBool() ? "done" : "error";
    final_frame.data = result.Dump();
    SendAll(fd, ChunkEncode(EncodeSse(final_frame)));
    SendAll(fd, "0\r\n\r\n");
    ::close(fd);
    return;
  }

  const Json result = service_->Handle(request->path, payload);
  HttpResponse response;
  response.status = result["ok"].AsBool() ? 200 : 400;
  if (!result["ok"].AsBool() &&
      result["error"]["code"].AsString() == "NotFound") {
    response.status = 404;
  }
  response.headers["content-type"] = "application/json";
  response.body = result.Dump();
  SendAll(fd, SerializeHttpResponse(response));
  ::close(fd);
}

StatusOr<HttpResponse> HttpFetch(const std::string& host, int port,
                                 const std::string& method,
                                 const std::string& target,
                                 const std::string& body,
                                 const std::string& content_type,
                                 double timeout_seconds) {
  LLMMS_ASSIGN_OR_RETURN(const int fd,
                         ConnectSocket(host, port, timeout_seconds));
  const std::string request = SerializeHttpRequest(
      host, method, target, body, content_type, /*accept_event_stream=*/false);
  if (!SendAll(fd, request)) {
    ::close(fd);
    return Status::IOError("send failed");
  }
  std::string raw;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      ::close(fd);
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::DeadlineExceeded("recv timed out after " +
                                        std::to_string(timeout_seconds) +
                                        "s");
      }
      return Status::IOError("recv failed");
    }
    if (n == 0) break;
    raw.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  return ParseHttpResponse(raw);
}

StatusOr<std::unique_ptr<HttpClientStream>> HttpClientStream::Open(
    const std::string& host, int port, const std::string& method,
    const std::string& target, const std::string& body,
    const std::string& content_type, double timeout_seconds,
    bool accept_event_stream) {
  LLMMS_ASSIGN_OR_RETURN(const int fd,
                         ConnectSocket(host, port, timeout_seconds));
  auto stream = std::unique_ptr<HttpClientStream>(new HttpClientStream());
  stream->fd_ = fd;
  stream->timeout_seconds_ = timeout_seconds;
  const std::string request = SerializeHttpRequest(
      host, method, target, body, content_type, accept_event_stream);
  if (!SendAll(fd, request)) {
    return Status::IOError("send failed");  // destructor closes the socket
  }

  // Read until the head is complete; whatever body bytes arrive with it are
  // decoded into pending_ for the first Read.
  std::string raw;
  char buffer[4096];
  size_t head_end = std::string::npos;
  while (head_end == std::string::npos) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::DeadlineExceeded(
            "response head not received within " +
            std::to_string(timeout_seconds) + "s");
      }
      return Status::IOError("recv failed reading response head");
    }
    if (n == 0) {
      return Status::IOError("connection closed before response head");
    }
    raw.append(buffer, static_cast<size_t>(n));
    head_end = raw.find("\r\n\r\n");
    if (raw.size() > (1u << 20)) {
      return Status::ResourceExhausted("response head too large");
    }
  }
  LLMMS_ASSIGN_OR_RETURN(stream->head_,
                         ParseHttpResponseHead(raw.substr(0, head_end)));
  auto te = stream->head_.headers.find("transfer-encoding");
  stream->chunked_ =
      te != stream->head_.headers.end() && ToLower(te->second) == "chunked";
  auto cl = stream->head_.headers.find("content-length");
  if (cl != stream->head_.headers.end()) {
    stream->has_content_length_ = true;
    stream->content_remaining_ =
        static_cast<size_t>(std::strtoull(cl->second.c_str(), nullptr, 10));
  }

  const std::string_view rest = std::string_view(raw).substr(head_end + 4);
  if (stream->chunked_) {
    LLMMS_RETURN_NOT_OK(stream->decoder_.Feed(rest, &stream->pending_));
    if (stream->decoder_.done()) stream->exhausted_ = true;
  } else if (stream->has_content_length_) {
    const size_t take = std::min(rest.size(), stream->content_remaining_);
    stream->pending_.append(rest.substr(0, take));
    stream->content_remaining_ -= take;
    if (stream->content_remaining_ == 0) stream->exhausted_ = true;
  } else {
    stream->pending_.append(rest);  // close-delimited
  }
  return stream;
}

HttpClientStream::~HttpClientStream() {
  if (fd_ >= 0) ::close(fd_);
}

StatusOr<std::string> HttpClientStream::Read() {
  if (!pending_.empty()) {
    std::string out;
    out.swap(pending_);
    return out;
  }
  if (exhausted_) return std::string();

  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::DeadlineExceeded("no stream data within " +
                                        std::to_string(timeout_seconds_) +
                                        "s");
      }
      return Status::IOError("recv failed mid-stream");
    }
    if (n == 0) {
      // Peer closed. Clean only if the framing says the body is complete.
      if (chunked_ && !decoder_.done()) {
        return Status::IOError("connection closed mid-stream");
      }
      if (has_content_length_ && content_remaining_ > 0) {
        return Status::IOError("connection closed before content-length");
      }
      exhausted_ = true;
      return std::string();
    }
    const std::string_view bytes(buffer, static_cast<size_t>(n));
    std::string out;
    if (chunked_) {
      LLMMS_RETURN_NOT_OK(decoder_.Feed(bytes, &out));
      if (decoder_.done()) exhausted_ = true;
      // Framing-only bytes decode to nothing; keep reading until payload,
      // end of stream, or deadline.
      if (out.empty() && !exhausted_) continue;
      return out;
    }
    if (has_content_length_) {
      const size_t take = std::min(bytes.size(), content_remaining_);
      out.append(bytes.substr(0, take));
      content_remaining_ -= take;
      if (content_remaining_ == 0) exhausted_ = true;
      return out;
    }
    return std::string(bytes);  // close-delimited
  }
}

}  // namespace llmms::app
