#ifndef LLMMS_VECTORDB_COLLECTION_H_
#define LLMMS_VECTORDB_COLLECTION_H_

#include <atomic>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "llmms/common/result.h"
#include "llmms/common/status.h"
#include "llmms/vectordb/index.h"
#include "llmms/vectordb/quantizer.h"
#include "llmms/vectordb/types.h"

namespace llmms::vectordb {

enum class IndexKind { kFlat, kHnsw };

// The query/mutation surface shared by Collection (one shard) and
// ShardedCollection (hash-partitioned fan-out over Collections), so the RAG
// layer and the database registry compose over either without caring how
// the records are placed.
class CollectionBase {
 public:
  virtual ~CollectionBase() = default;

  // Inserts or replaces the record with record.id.
  virtual Status Upsert(VectorRecord record) = 0;
  virtual Status UpsertBatch(std::vector<VectorRecord> records) = 0;

  // Removes a record; NotFound if absent.
  virtual Status Delete(const std::string& id) = 0;

  // Fetches a record by id.
  virtual StatusOr<VectorRecord> Get(const std::string& id) const = 0;
  virtual bool Contains(const std::string& id) const = 0;

  // Returns up to k most similar records (larger score = closer), optionally
  // restricted by a metadata equality filter. Results are ordered by
  // (score desc, id asc) — a total order, so equal-scoring records at the k
  // boundary resolve identically however the data is sharded.
  virtual StatusOr<std::vector<QueryResult>> Query(
      const Vector& query, size_t k, const MetadataFilter& filter = {}) const = 0;

  // All live record ids (unordered).
  virtual std::vector<std::string> Ids() const = 0;

  virtual size_t size() const = 0;
  virtual const std::string& name() const = 0;
};

// A named, thread-safe set of (id, vector, metadata, document) records with
// top-k similarity queries — the Chroma "collection" abstraction. Upserts
// replace existing ids; queries support equality metadata filters by
// over-fetching from the index and post-filtering.
//
// Concurrency: reads (Query/Get/Contains/Ids/size) take a shared lock and
// run in parallel; mutations (Upsert/Delete) take the lock exclusively.
class Collection final : public CollectionBase {
 public:
  // Opt-in two-stage retrieval: once `train_size` records exist, a
  // ScalarQuantizer is trained over the live set and every query scans the
  // int8 codes for k*overfetch candidates, which are then re-ranked against
  // the full-precision vectors (FAISS's SQ8 + refine pattern). Off by
  // default: the exact path is untouched.
  struct Quantization {
    bool enabled = false;
    // Candidate multiplier for the first (quantized) stage.
    size_t overfetch = 4;
    // Records required before the quantizer trains; until then queries use
    // the exact path.
    size_t train_size = 256;
  };

  struct Options {
    size_t dimension = 384;
    DistanceMetric metric = DistanceMetric::kCosine;
    IndexKind index_kind = IndexKind::kHnsw;
    // HNSW tuning (ignored for flat collections).
    size_t hnsw_m = 16;
    size_t hnsw_ef_construction = 200;
    size_t hnsw_ef_search = 64;
    uint64_t seed = 0x48e5f1ULL;
    Quantization quantization;
  };

  Collection(std::string name, const Options& options);

  Collection(const Collection&) = delete;
  Collection& operator=(const Collection&) = delete;

  Status Upsert(VectorRecord record) override;
  Status UpsertBatch(std::vector<VectorRecord> records) override;
  Status Delete(const std::string& id) override;
  StatusOr<VectorRecord> Get(const std::string& id) const override;
  bool Contains(const std::string& id) const override;
  StatusOr<std::vector<QueryResult>> Query(
      const Vector& query, size_t k,
      const MetadataFilter& filter = {}) const override;
  std::vector<std::string> Ids() const override;
  size_t size() const override;
  const std::string& name() const override { return name_; }

  const Options& options() const { return options_; }

  // Whether the quantized candidate stage is live (trained and in use).
  bool quantized() const;
  // Queries served since construction (per-shard QPS gauge for /api/health).
  uint64_t query_count() const {
    return queries_.load(std::memory_order_relaxed);
  }
  // Bytes held by stored vectors plus quantized codes (health gauge).
  size_t approx_vector_bytes() const;
  // Runtime knob for recall/QPS sweeps; ignored while unquantized.
  void set_quantization_overfetch(size_t overfetch);
  size_t quantization_overfetch() const {
    return quant_overfetch_.load(std::memory_order_relaxed);
  }

 private:
  std::unique_ptr<VectorIndex> MakeIndex() const;
  // Trains the quantizer over the live set and back-fills the code index;
  // caller holds the exclusive lock.
  Status TrainQuantizerLocked();
  // Adds one vector to the code index; caller holds the exclusive lock.
  Status AddToQuantizedLocked(SlotId slot, const Vector& vector);
  // Candidate hits for one fetch size: the exact index directly, or the
  // two-stage quantized scan + full-precision re-rank.
  StatusOr<std::vector<IndexHit>> CandidatesLocked(const Vector& query,
                                                   size_t fetch) const;

  std::string name_;
  Options options_;

  mutable std::shared_mutex mu_;
  std::unique_ptr<VectorIndex> index_;
  std::unordered_map<std::string, SlotId> id_to_slot_;
  std::unordered_map<SlotId, VectorRecord> slot_to_record_;
  // Two-stage state (null until the quantizer trains). Slots in the code
  // index are assigned independently of the main index, so both directions
  // of the mapping are kept.
  std::unique_ptr<QuantizedFlatIndex> qindex_;
  std::unordered_map<SlotId, SlotId> slot_to_qslot_;
  std::unordered_map<SlotId, SlotId> qslot_to_slot_;

  mutable std::atomic<uint64_t> queries_{0};
  std::atomic<size_t> quant_overfetch_{4};
};

}  // namespace llmms::vectordb

#endif  // LLMMS_VECTORDB_COLLECTION_H_
