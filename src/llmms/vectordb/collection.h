#ifndef LLMMS_VECTORDB_COLLECTION_H_
#define LLMMS_VECTORDB_COLLECTION_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "llmms/common/result.h"
#include "llmms/common/status.h"
#include "llmms/vectordb/index.h"
#include "llmms/vectordb/types.h"

namespace llmms::vectordb {

enum class IndexKind { kFlat, kHnsw };

// A named, thread-safe set of (id, vector, metadata, document) records with
// top-k similarity queries — the Chroma "collection" abstraction. Upserts
// replace existing ids; queries support equality metadata filters by
// over-fetching from the index and post-filtering.
class Collection {
 public:
  struct Options {
    size_t dimension = 384;
    DistanceMetric metric = DistanceMetric::kCosine;
    IndexKind index_kind = IndexKind::kHnsw;
    // HNSW tuning (ignored for flat collections).
    size_t hnsw_m = 16;
    size_t hnsw_ef_construction = 200;
    size_t hnsw_ef_search = 64;
    uint64_t seed = 0x48e5f1ULL;
  };

  Collection(std::string name, const Options& options);

  Collection(const Collection&) = delete;
  Collection& operator=(const Collection&) = delete;

  // Inserts or replaces the record with record.id.
  Status Upsert(VectorRecord record);
  Status UpsertBatch(std::vector<VectorRecord> records);

  // Removes a record; NotFound if absent.
  Status Delete(const std::string& id);

  // Fetches a record by id.
  StatusOr<VectorRecord> Get(const std::string& id) const;
  bool Contains(const std::string& id) const;

  // Returns up to k most similar records (larger score = closer), optionally
  // restricted by a metadata equality filter.
  StatusOr<std::vector<QueryResult>> Query(const Vector& query, size_t k,
                                           const MetadataFilter& filter = {}) const;

  // All live record ids (unordered).
  std::vector<std::string> Ids() const;

  size_t size() const;
  const std::string& name() const { return name_; }
  const Options& options() const { return options_; }

 private:
  std::unique_ptr<VectorIndex> MakeIndex() const;

  std::string name_;
  Options options_;

  mutable std::mutex mu_;
  std::unique_ptr<VectorIndex> index_;
  std::unordered_map<std::string, SlotId> id_to_slot_;
  std::unordered_map<SlotId, VectorRecord> slot_to_record_;
};

}  // namespace llmms::vectordb

#endif  // LLMMS_VECTORDB_COLLECTION_H_
