#ifndef LLMMS_VECTORDB_TYPES_H_
#define LLMMS_VECTORDB_TYPES_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace llmms::vectordb {

using Vector = std::vector<float>;

// Flat string-keyed metadata, like Chroma's per-record metadata dictionary.
using Metadata = std::map<std::string, std::string>;

// How vectors are compared. For kCosine, similarity scores returned by
// queries are cosine similarity in [-1, 1]; for kL2 they are the negated
// Euclidean distance (larger = closer); for kInnerProduct, the dot product.
enum class DistanceMetric {
  kCosine,
  kL2,
  kInnerProduct,
};

const char* DistanceMetricToString(DistanceMetric metric);

// One stored record.
struct VectorRecord {
  std::string id;
  Vector vector;
  Metadata metadata;
  // Original text of the chunk (Chroma's "document" field); optional.
  std::string document;
};

// One search hit, ordered most-similar-first.
struct QueryResult {
  std::string id;
  double score = 0.0;  // similarity (larger = closer), see DistanceMetric
  Metadata metadata;
  std::string document;
};

// Equality filter over metadata: every (key, value) pair must match.
// An empty filter matches everything.
using MetadataFilter = std::map<std::string, std::string>;

inline bool MatchesFilter(const Metadata& metadata,
                          const MetadataFilter& filter) {
  for (const auto& [key, value] : filter) {
    auto it = metadata.find(key);
    if (it == metadata.end() || it->second != value) return false;
  }
  return true;
}

}  // namespace llmms::vectordb

#endif  // LLMMS_VECTORDB_TYPES_H_
