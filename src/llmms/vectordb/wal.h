#ifndef LLMMS_VECTORDB_WAL_H_
#define LLMMS_VECTORDB_WAL_H_

#include <cstdio>
#include <string>

#include "llmms/common/result.h"
#include "llmms/common/status.h"
#include "llmms/vectordb/collection.h"
#include "llmms/vectordb/types.h"

namespace llmms::vectordb {

// Append-only write-ahead log for one collection: every upsert/delete is
// recorded as a length-prefixed, checksummed record, so the collection state
// can be rebuilt after a crash by replaying the log (the standard
// database-durability pattern; whole-database snapshots via
// VectorDatabase::Save complement it).
//
// Recovery is torn-tail tolerant: Replay applies records until the first
// truncated or checksum-failing record and reports how many were applied —
// a partially written final record (the crash case) is not an error.
class WriteAheadLog {
 public:
  // Opens (creating or appending to) the log at `path`.
  static StatusOr<std::unique_ptr<WriteAheadLog>> Open(const std::string& path);

  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  // Appends an upsert record (flushed before returning).
  Status AppendUpsert(const VectorRecord& record);

  // Appends a delete record.
  Status AppendDelete(const std::string& id);

  const std::string& path() const { return path_; }

  struct ReplayStats {
    size_t upserts = 0;
    size_t deletes = 0;
    bool torn_tail = false;  // log ended mid-record (clean crash recovery)
  };

  // Replays the log at `path` into `collection` (applied in order; deletes
  // of absent ids are ignored). The file not existing yields empty stats.
  static StatusOr<ReplayStats> Replay(const std::string& path,
                                      Collection* collection);

 private:
  WriteAheadLog(std::string path, std::FILE* file);

  Status AppendRecord(const std::string& payload);

  std::string path_;
  std::FILE* file_;
};

}  // namespace llmms::vectordb

#endif  // LLMMS_VECTORDB_WAL_H_
