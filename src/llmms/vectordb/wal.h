#ifndef LLMMS_VECTORDB_WAL_H_
#define LLMMS_VECTORDB_WAL_H_

#include <cstdint>
#include <memory>
#include <string>

#include "llmms/common/fs.h"
#include "llmms/common/result.h"
#include "llmms/common/status.h"
#include "llmms/vectordb/collection.h"
#include "llmms/vectordb/types.h"

namespace llmms::vectordb {

// Append-only write-ahead log for one collection: every upsert/delete is
// recorded as a length-prefixed, checksummed, sequence-numbered record, so
// the collection state can be rebuilt after a crash by replaying the log
// (the standard database-durability pattern; whole-database snapshots via
// VectorDatabase::Save complement it).
//
// Record framing (v2):
//   [u32 payload length][u32 FNV checksum][u64 sequence][payload]
// The checksum covers sequence + payload, so a record can neither be torn
// nor transplanted from another position without detection. Sequence numbers
// start at 1 and must increase by exactly 1; replay stops at the first gap
// (a sequence break — evidence of a lost or reordered write, counted in
// GlobalStorageCounters().sequence_breaks).
//
// Durability contract (DESIGN.md §14): what an OK status from Append*
// promises depends on Options::sync_policy —
//   kNone        bytes reached the kernel (a process crash loses nothing,
//                a power cut may lose any suffix);
//   kGroupCommit fsync every Options::group_commit_every appends — at most
//                that many acknowledged records may be lost to a power cut;
//   kEveryRecord fsync before returning — an OK append survives any crash.
// After any append or sync I/O failure the log poisons itself: further
// appends fail with FailedPrecondition rather than risk an undetected gap
// in the middle of the log.
//
// Recovery is torn-tail tolerant: Replay applies records until the first
// truncated or checksum-failing record and reports how many were applied —
// a partially written final record (the crash case) is not an error.
class WriteAheadLog {
 public:
  enum class SyncPolicy {
    kNone = 0,
    kGroupCommit = 1,
    kEveryRecord = 2,
  };

  struct Options {
    SyncPolicy sync_policy = SyncPolicy::kNone;
    // Under kGroupCommit, fsync once per this many appended records.
    size_t group_commit_every = 8;
  };

  // Opens (creating or appending to) the log at `path`, scanning any
  // existing records so new appends continue the sequence run. All I/O goes
  // through `fs`, which must outlive the log.
  static StatusOr<std::unique_ptr<WriteAheadLog>> Open(FileSystem* fs,
                                                       const std::string& path,
                                                       const Options& options);
  // Convenience overload: FileSystem::Default() and default Options.
  static StatusOr<std::unique_ptr<WriteAheadLog>> Open(const std::string& path);

  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  // Appends an upsert record. See the class comment for what an OK return
  // promises under each sync policy — only kEveryRecord makes the record
  // durable before returning.
  Status AppendUpsert(const VectorRecord& record);

  // Appends a delete record (same durability contract as AppendUpsert).
  Status AppendDelete(const std::string& id);

  // Explicit durability barrier: fsyncs the log regardless of policy.
  // Callers using kNone/kGroupCommit call this before acknowledging a
  // batch externally.
  Status Sync();

  const std::string& path() const { return path_; }
  // Sequence number of the last appended (or scanned-at-open) record;
  // 0 when the log is empty.
  uint64_t last_sequence() const { return sequence_; }

  struct ReplayStats {
    size_t upserts = 0;
    size_t deletes = 0;
    bool torn_tail = false;  // log ended mid-record (clean crash recovery)
    bool sequence_break = false;  // intact record with the wrong sequence
    uint64_t last_sequence = 0;   // sequence of the last applied record
  };

  // Replays the log at `path` into `collection` (applied in order; deletes
  // of absent ids are ignored). The file not existing yields empty stats.
  static StatusOr<ReplayStats> Replay(FileSystem* fs, const std::string& path,
                                      Collection* collection);
  static StatusOr<ReplayStats> Replay(const std::string& path,
                                      Collection* collection);

  // Writes a fresh, fsynced log at `path` holding exactly the live records
  // of `collection`, removing any stale file at `path` first (a previous
  // crash mid-rewrite may have left one; appending to it would resurrect
  // deleted records). The caller makes the file live afterwards — with
  // Rename + SyncDir for in-place compaction, or a manifest swap for
  // sharded checkpoints.
  static Status WriteCompacted(FileSystem* fs, const std::string& path,
                               const CollectionBase& collection,
                               const Options& options);

 private:
  WriteAheadLog(FileSystem* fs, std::string path, const Options& options,
                std::unique_ptr<WritableFile> file, uint64_t sequence);

  Status AppendRecord(const std::string& payload);

  FileSystem* fs_;
  std::string path_;
  Options options_;
  std::unique_ptr<WritableFile> file_;
  uint64_t sequence_;  // last sequence number written
  size_t unsynced_appends_ = 0;
  bool broken_ = false;  // poisoned after an append/sync I/O failure
};

}  // namespace llmms::vectordb

#endif  // LLMMS_VECTORDB_WAL_H_
