#include "llmms/vectordb/database.h"

#include <algorithm>
#include <cstdint>
#include <cstring>

namespace llmms::vectordb {
namespace {

constexpr uint32_t kMagic = 0x4C4D5644;  // "LMVD"
// v1: plain collections only, no quantization options.
// v2: quantization options per collection + a sharded-collection section.
constexpr uint32_t kVersion = 2;
constexpr uint32_t kOldestReadableVersion = 1;

void WriteU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void WriteU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void WriteString(std::string* out, const std::string& s) {
  WriteU64(out, s.size());
  out->append(s);
}

// Cursor reader over the snapshot bytes; bounds checks are phrased as
// `len > remaining` so hostile declared lengths cannot overflow the cursor.
class SnapshotReader {
 public:
  explicit SnapshotReader(std::string_view data) : data_(data) {}

  bool ReadU32(uint32_t* v) { return ReadRaw(v, sizeof(*v)); }
  bool ReadU64(uint64_t* v) { return ReadRaw(v, sizeof(*v)); }

  bool ReadString(std::string* s) {
    uint64_t len = 0;
    if (!ReadU64(&len)) return false;
    if (len > (1ULL << 32)) return false;  // sanity bound against corruption
    if (len > data_.size() - pos_) return false;
    s->assign(data_.data() + pos_, static_cast<size_t>(len));
    pos_ += static_cast<size_t>(len);
    return true;
  }

  bool ReadFloats(size_t n, std::vector<float>* v) {
    if (n > (data_.size() - pos_) / sizeof(float)) return false;
    v->resize(n);
    std::memcpy(v->data(), data_.data() + pos_, n * sizeof(float));
    pos_ += n * sizeof(float);
    return true;
  }

 private:
  bool ReadRaw(void* out, size_t n) {
    if (n > data_.size() - pos_) return false;
    std::memcpy(out, data_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  std::string_view data_;
  size_t pos_ = 0;
};

// Collection options, v2 layout (v1 lacks the quantization fields).
void WriteCollectionOptions(std::string* out, const Collection::Options& opts) {
  WriteU64(out, opts.dimension);
  WriteU32(out, static_cast<uint32_t>(opts.metric));
  WriteU32(out, static_cast<uint32_t>(opts.index_kind));
  WriteU64(out, opts.hnsw_m);
  WriteU64(out, opts.hnsw_ef_construction);
  WriteU64(out, opts.hnsw_ef_search);
  WriteU64(out, opts.seed);
  WriteU32(out, opts.quantization.enabled ? 1 : 0);
  WriteU64(out, opts.quantization.overfetch);
  WriteU64(out, opts.quantization.train_size);
}

bool ReadCollectionOptions(SnapshotReader* in, uint32_t version,
                           Collection::Options* opts) {
  uint64_t dimension = 0;
  uint32_t metric = 0;
  uint32_t index_kind = 0;
  uint64_t m = 0;
  uint64_t efc = 0;
  uint64_t efs = 0;
  uint64_t seed = 0;
  if (!in->ReadU64(&dimension) || !in->ReadU32(&metric) ||
      !in->ReadU32(&index_kind) || !in->ReadU64(&m) || !in->ReadU64(&efc) ||
      !in->ReadU64(&efs) || !in->ReadU64(&seed)) {
    return false;
  }
  opts->dimension = static_cast<size_t>(dimension);
  opts->metric = static_cast<DistanceMetric>(metric);
  opts->index_kind = static_cast<IndexKind>(index_kind);
  opts->hnsw_m = static_cast<size_t>(m);
  opts->hnsw_ef_construction = static_cast<size_t>(efc);
  opts->hnsw_ef_search = static_cast<size_t>(efs);
  opts->seed = seed;
  if (version >= 2) {
    uint32_t quantized = 0;
    uint64_t overfetch = 0;
    uint64_t train_size = 0;
    if (!in->ReadU32(&quantized) || !in->ReadU64(&overfetch) ||
        !in->ReadU64(&train_size)) {
      return false;
    }
    opts->quantization.enabled = quantized != 0;
    opts->quantization.overfetch = static_cast<size_t>(overfetch);
    opts->quantization.train_size = static_cast<size_t>(train_size);
  }
  return true;
}

Status WriteRecords(std::string* out, const CollectionBase& collection) {
  const auto ids = collection.Ids();
  WriteU64(out, ids.size());
  for (const auto& id : ids) {
    auto record = collection.Get(id);
    if (!record.ok()) return record.status();
    WriteString(out, record->id);
    WriteU64(out, record->vector.size());
    out->append(reinterpret_cast<const char*>(record->vector.data()),
                record->vector.size() * sizeof(float));
    WriteU64(out, record->metadata.size());
    for (const auto& [k, v] : record->metadata) {
      WriteString(out, k);
      WriteString(out, v);
    }
    WriteString(out, record->document);
  }
  return Status::OK();
}

Status ReadRecordsInto(SnapshotReader* in, const Collection::Options& opts,
                       CollectionBase* collection) {
  uint64_t num_records = 0;
  if (!in->ReadU64(&num_records)) {
    return Status::IOError("truncated record count");
  }
  for (uint64_t r = 0; r < num_records; ++r) {
    VectorRecord record;
    if (!in->ReadString(&record.id)) {
      return Status::IOError("truncated record id");
    }
    uint64_t dim = 0;
    if (!in->ReadU64(&dim) || dim != opts.dimension) {
      return Status::IOError("corrupt record vector length");
    }
    if (!in->ReadFloats(static_cast<size_t>(dim), &record.vector)) {
      return Status::IOError("truncated record vector");
    }
    uint64_t num_meta = 0;
    if (!in->ReadU64(&num_meta)) {
      return Status::IOError("truncated metadata count");
    }
    for (uint64_t i = 0; i < num_meta; ++i) {
      std::string k;
      std::string v;
      if (!in->ReadString(&k) || !in->ReadString(&v)) {
        return Status::IOError("truncated metadata entry");
      }
      record.metadata[std::move(k)] = std::move(v);
    }
    if (!in->ReadString(&record.document)) {
      return Status::IOError("truncated record document");
    }
    LLMMS_RETURN_NOT_OK(collection->Upsert(std::move(record)));
  }
  return Status::OK();
}

}  // namespace

StatusOr<std::shared_ptr<Collection>> VectorDatabase::CreateCollection(
    const std::string& name, const Collection::Options& options) {
  if (name.empty()) {
    return Status::InvalidArgument("collection name must not be empty");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (NameTakenLocked(name)) {
    return Status::AlreadyExists("collection '" + name + "' already exists");
  }
  auto collection = std::make_shared<Collection>(name, options);
  collections_[name] = collection;
  return collection;
}

StatusOr<std::shared_ptr<Collection>> VectorDatabase::GetCollection(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = collections_.find(name);
  if (it == collections_.end()) {
    return Status::NotFound("no collection named '" + name + "'");
  }
  return it->second;
}

StatusOr<std::shared_ptr<Collection>> VectorDatabase::GetOrCreateCollection(
    const std::string& name, const Collection::Options& options) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = collections_.find(name);
    if (it != collections_.end()) {
      const auto& existing = it->second->options();
      if (existing.dimension != options.dimension ||
          existing.metric != options.metric) {
        return Status::FailedPrecondition(
            "collection '" + name + "' exists with incompatible options");
      }
      return it->second;
    }
  }
  return CreateCollection(name, options);
}

StatusOr<std::shared_ptr<ShardedCollection>>
VectorDatabase::CreateShardedCollection(
    const std::string& name, const ShardedCollection::Options& options) {
  if (name.empty()) {
    return Status::InvalidArgument("collection name must not be empty");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (NameTakenLocked(name)) {
    return Status::AlreadyExists("collection '" + name + "' already exists");
  }
  auto collection = std::make_shared<ShardedCollection>(name, options);
  sharded_[name] = collection;
  return collection;
}

StatusOr<std::shared_ptr<ShardedCollection>>
VectorDatabase::GetShardedCollection(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sharded_.find(name);
  if (it == sharded_.end()) {
    return Status::NotFound("no sharded collection named '" + name + "'");
  }
  return it->second;
}

StatusOr<std::shared_ptr<ShardedCollection>>
VectorDatabase::GetOrCreateShardedCollection(
    const std::string& name, const ShardedCollection::Options& options) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sharded_.find(name);
    if (it != sharded_.end()) {
      const auto& existing = it->second->options();
      if (existing.collection.dimension != options.collection.dimension ||
          existing.collection.metric != options.collection.metric ||
          existing.num_shards != std::max<size_t>(1, options.num_shards)) {
        return Status::FailedPrecondition(
            "collection '" + name + "' exists with incompatible options");
      }
      return it->second;
    }
    if (collections_.count(name) > 0) {
      return Status::FailedPrecondition(
          "collection '" + name + "' exists but is not sharded");
    }
  }
  return CreateShardedCollection(name, options);
}

Status VectorDatabase::DropCollection(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (collections_.erase(name) == 0 && sharded_.erase(name) == 0) {
    return Status::NotFound("no collection named '" + name + "'");
  }
  return Status::OK();
}

std::vector<std::string> VectorDatabase::ListCollections() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(collections_.size() + sharded_.size());
  for (const auto& [name, c] : collections_) names.push_back(name);
  for (const auto& [name, c] : sharded_) names.push_back(name);
  return names;
}

size_t VectorDatabase::collection_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return collections_.size() + sharded_.size();
}

std::vector<VectorDatabase::CollectionStats> VectorDatabase::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<CollectionStats> out;
  out.reserve(collections_.size() + sharded_.size());
  for (const auto& [name, collection] : collections_) {
    CollectionStats stats;
    stats.name = name;
    ShardedCollection::ShardStats shard;
    shard.records = collection->size();
    shard.queries = collection->query_count();
    shard.vector_bytes = collection->approx_vector_bytes();
    shard.quantized = collection->quantized();
    stats.shards.push_back(shard);
    out.push_back(std::move(stats));
  }
  for (const auto& [name, collection] : sharded_) {
    CollectionStats stats;
    stats.name = name;
    stats.sharded = true;
    stats.shards = collection->Stats();
    out.push_back(std::move(stats));
  }
  // Map iteration order is unspecified; health payloads should be stable.
  std::sort(out.begin(), out.end(),
            [](const CollectionStats& a, const CollectionStats& b) {
              return a.name < b.name;
            });
  return out;
}

Status VectorDatabase::Save(FileSystem* fs, const std::string& path) const {
  auto& counters = GlobalStorageCounters();
  std::string out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    WriteU32(&out, kMagic);
    WriteU32(&out, kVersion);
    WriteU64(&out, collections_.size());
    for (const auto& [name, collection] : collections_) {
      WriteString(&out, name);
      WriteCollectionOptions(&out, collection->options());
      LLMMS_RETURN_NOT_OK(WriteRecords(&out, *collection));
    }
    // v2 trailer: sharded collections, records merged across shards (the
    // hash placement is deterministic, so Load re-partitions identically).
    WriteU64(&out, sharded_.size());
    for (const auto& [name, collection] : sharded_) {
      WriteString(&out, name);
      WriteU64(&out, collection->num_shards());
      WriteCollectionOptions(&out, collection->options().collection);
      LLMMS_RETURN_NOT_OK(WriteRecords(&out, *collection));
    }
  }
  Status status = AtomicWriteFile(fs, path, out);
  if (!status.ok()) {
    counters.snapshot_save_failures.fetch_add(1, std::memory_order_relaxed);
    // A missing parent directory surfaces as NotFound from open(); this API
    // reports every save failure uniformly as IOError.
    if (status.IsNotFound()) return Status::IOError(status.message());
    return status;
  }
  counters.snapshot_saves.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status VectorDatabase::Save(const std::string& path) const {
  return Save(FileSystem::Default(), path);
}

StatusOr<std::unique_ptr<VectorDatabase>> VectorDatabase::Load(
    FileSystem* fs, const std::string& path) {
  auto& counters = GlobalStorageCounters();
  auto contents_or = fs->ReadFile(path);
  if (!contents_or.ok()) {
    counters.snapshot_load_failures.fetch_add(1, std::memory_order_relaxed);
    return Status::IOError("cannot open for read: " + path);
  }
  const std::string contents = std::move(*contents_or);
  SnapshotReader in(contents);

  // Any parse failure from here on counts as a failed load.
  struct FailureCounter {
    ~FailureCounter() {
      auto& c = GlobalStorageCounters();
      (ok ? c.snapshot_loads : c.snapshot_load_failures)
          .fetch_add(1, std::memory_order_relaxed);
    }
    bool ok = false;
  } outcome;

  uint32_t magic = 0;
  uint32_t version = 0;
  if (!in.ReadU32(&magic) || magic != kMagic) {
    return Status::IOError("bad database file magic: " + path);
  }
  if (!in.ReadU32(&version) || version < kOldestReadableVersion ||
      version > kVersion) {
    return Status::IOError("unsupported database file version");
  }
  uint64_t num_collections = 0;
  if (!in.ReadU64(&num_collections)) {
    return Status::IOError("truncated database file");
  }

  auto db = std::make_unique<VectorDatabase>();
  for (uint64_t c = 0; c < num_collections; ++c) {
    std::string name;
    Collection::Options opts;
    if (!in.ReadString(&name) || !ReadCollectionOptions(&in, version, &opts)) {
      return Status::IOError("truncated collection header");
    }
    LLMMS_ASSIGN_OR_RETURN(auto collection, db->CreateCollection(name, opts));
    LLMMS_RETURN_NOT_OK(ReadRecordsInto(&in, opts, collection.get()));
  }

  if (version >= 2) {
    uint64_t num_sharded = 0;
    if (!in.ReadU64(&num_sharded)) {
      return Status::IOError("truncated sharded collection count");
    }
    for (uint64_t c = 0; c < num_sharded; ++c) {
      std::string name;
      uint64_t num_shards = 0;
      ShardedCollection::Options opts;
      if (!in.ReadString(&name) || !in.ReadU64(&num_shards) ||
          !ReadCollectionOptions(&in, version, &opts.collection)) {
        return Status::IOError("truncated sharded collection header");
      }
      if (num_shards == 0 || num_shards > (1ULL << 20)) {
        return Status::IOError("corrupt shard count");
      }
      opts.num_shards = static_cast<size_t>(num_shards);
      LLMMS_ASSIGN_OR_RETURN(auto collection,
                             db->CreateShardedCollection(name, opts));
      LLMMS_RETURN_NOT_OK(
          ReadRecordsInto(&in, opts.collection, collection.get()));
    }
  }
  outcome.ok = true;
  return db;
}

StatusOr<std::unique_ptr<VectorDatabase>> VectorDatabase::Load(
    const std::string& path) {
  return Load(FileSystem::Default(), path);
}

}  // namespace llmms::vectordb
