#include "llmms/vectordb/database.h"

#include <cstdint>
#include <fstream>

namespace llmms::vectordb {
namespace {

constexpr uint32_t kMagic = 0x4C4D5644;  // "LMVD"
constexpr uint32_t kVersion = 1;

void WriteU32(std::ostream& out, uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void WriteU64(std::ostream& out, uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void WriteString(std::ostream& out, const std::string& s) {
  WriteU64(out, s.size());
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool ReadU32(std::istream& in, uint32_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return in.good();
}

bool ReadU64(std::istream& in, uint64_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return in.good();
}

bool ReadString(std::istream& in, std::string* s) {
  uint64_t len = 0;
  if (!ReadU64(in, &len)) return false;
  if (len > (1ULL << 32)) return false;  // sanity bound against corruption
  s->resize(static_cast<size_t>(len));
  in.read(s->data(), static_cast<std::streamsize>(len));
  return in.good() || (len == 0 && !in.bad());
}

}  // namespace

StatusOr<std::shared_ptr<Collection>> VectorDatabase::CreateCollection(
    const std::string& name, const Collection::Options& options) {
  if (name.empty()) {
    return Status::InvalidArgument("collection name must not be empty");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (collections_.count(name) > 0) {
    return Status::AlreadyExists("collection '" + name + "' already exists");
  }
  auto collection = std::make_shared<Collection>(name, options);
  collections_[name] = collection;
  return collection;
}

StatusOr<std::shared_ptr<Collection>> VectorDatabase::GetCollection(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = collections_.find(name);
  if (it == collections_.end()) {
    return Status::NotFound("no collection named '" + name + "'");
  }
  return it->second;
}

StatusOr<std::shared_ptr<Collection>> VectorDatabase::GetOrCreateCollection(
    const std::string& name, const Collection::Options& options) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = collections_.find(name);
    if (it != collections_.end()) {
      const auto& existing = it->second->options();
      if (existing.dimension != options.dimension ||
          existing.metric != options.metric) {
        return Status::FailedPrecondition(
            "collection '" + name + "' exists with incompatible options");
      }
      return it->second;
    }
  }
  return CreateCollection(name, options);
}

Status VectorDatabase::DropCollection(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (collections_.erase(name) == 0) {
    return Status::NotFound("no collection named '" + name + "'");
  }
  return Status::OK();
}

std::vector<std::string> VectorDatabase::ListCollections() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(collections_.size());
  for (const auto& [name, c] : collections_) names.push_back(name);
  return names;
}

size_t VectorDatabase::collection_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return collections_.size();
}

Status VectorDatabase::Save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open for write: " + path);

  std::lock_guard<std::mutex> lock(mu_);
  WriteU32(out, kMagic);
  WriteU32(out, kVersion);
  WriteU64(out, collections_.size());
  for (const auto& [name, collection] : collections_) {
    const auto& opts = collection->options();
    WriteString(out, name);
    WriteU64(out, opts.dimension);
    WriteU32(out, static_cast<uint32_t>(opts.metric));
    WriteU32(out, static_cast<uint32_t>(opts.index_kind));
    WriteU64(out, opts.hnsw_m);
    WriteU64(out, opts.hnsw_ef_construction);
    WriteU64(out, opts.hnsw_ef_search);
    WriteU64(out, opts.seed);

    const auto ids = collection->Ids();
    WriteU64(out, ids.size());
    for (const auto& id : ids) {
      auto record = collection->Get(id);
      if (!record.ok()) return record.status();
      WriteString(out, record->id);
      WriteU64(out, record->vector.size());
      out.write(reinterpret_cast<const char*>(record->vector.data()),
                static_cast<std::streamsize>(record->vector.size() *
                                             sizeof(float)));
      WriteU64(out, record->metadata.size());
      for (const auto& [k, v] : record->metadata) {
        WriteString(out, k);
        WriteString(out, v);
      }
      WriteString(out, record->document);
    }
  }
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

StatusOr<std::unique_ptr<VectorDatabase>> VectorDatabase::Load(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open for read: " + path);

  uint32_t magic = 0;
  uint32_t version = 0;
  if (!ReadU32(in, &magic) || magic != kMagic) {
    return Status::IOError("bad database file magic: " + path);
  }
  if (!ReadU32(in, &version) || version != kVersion) {
    return Status::IOError("unsupported database file version");
  }
  uint64_t num_collections = 0;
  if (!ReadU64(in, &num_collections)) {
    return Status::IOError("truncated database file");
  }

  auto db = std::make_unique<VectorDatabase>();
  for (uint64_t c = 0; c < num_collections; ++c) {
    std::string name;
    Collection::Options opts;
    uint64_t dimension = 0;
    uint32_t metric = 0;
    uint32_t index_kind = 0;
    uint64_t m = 0;
    uint64_t efc = 0;
    uint64_t efs = 0;
    uint64_t seed = 0;
    if (!ReadString(in, &name) || !ReadU64(in, &dimension) ||
        !ReadU32(in, &metric) || !ReadU32(in, &index_kind) ||
        !ReadU64(in, &m) || !ReadU64(in, &efc) || !ReadU64(in, &efs) ||
        !ReadU64(in, &seed)) {
      return Status::IOError("truncated collection header");
    }
    opts.dimension = static_cast<size_t>(dimension);
    opts.metric = static_cast<DistanceMetric>(metric);
    opts.index_kind = static_cast<IndexKind>(index_kind);
    opts.hnsw_m = static_cast<size_t>(m);
    opts.hnsw_ef_construction = static_cast<size_t>(efc);
    opts.hnsw_ef_search = static_cast<size_t>(efs);
    opts.seed = seed;

    LLMMS_ASSIGN_OR_RETURN(auto collection, db->CreateCollection(name, opts));

    uint64_t num_records = 0;
    if (!ReadU64(in, &num_records)) {
      return Status::IOError("truncated record count");
    }
    for (uint64_t r = 0; r < num_records; ++r) {
      VectorRecord record;
      if (!ReadString(in, &record.id)) {
        return Status::IOError("truncated record id");
      }
      uint64_t dim = 0;
      if (!ReadU64(in, &dim) || dim != opts.dimension) {
        return Status::IOError("corrupt record vector length");
      }
      record.vector.resize(static_cast<size_t>(dim));
      in.read(reinterpret_cast<char*>(record.vector.data()),
              static_cast<std::streamsize>(dim * sizeof(float)));
      if (!in) return Status::IOError("truncated record vector");
      uint64_t num_meta = 0;
      if (!ReadU64(in, &num_meta)) {
        return Status::IOError("truncated metadata count");
      }
      for (uint64_t i = 0; i < num_meta; ++i) {
        std::string k;
        std::string v;
        if (!ReadString(in, &k) || !ReadString(in, &v)) {
          return Status::IOError("truncated metadata entry");
        }
        record.metadata[std::move(k)] = std::move(v);
      }
      if (!ReadString(in, &record.document)) {
        return Status::IOError("truncated record document");
      }
      LLMMS_RETURN_NOT_OK(collection->Upsert(std::move(record)));
    }
  }
  return db;
}

}  // namespace llmms::vectordb
