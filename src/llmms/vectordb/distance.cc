#include "llmms/vectordb/distance.h"

#include <cmath>

namespace llmms::vectordb {
namespace {

double Dot(const Vector& a, const Vector& b) {
  double sum = 0.0;
  const size_t n = a.size();
  for (size_t i = 0; i < n; ++i) {
    sum += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return sum;
}

}  // namespace

const char* DistanceMetricToString(DistanceMetric metric) {
  switch (metric) {
    case DistanceMetric::kCosine:
      return "cosine";
    case DistanceMetric::kL2:
      return "l2";
    case DistanceMetric::kInnerProduct:
      return "ip";
  }
  return "unknown";
}

double Distance(DistanceMetric metric, const Vector& a, const Vector& b) {
  switch (metric) {
    case DistanceMetric::kCosine: {
      double dot = 0.0;
      double na = 0.0;
      double nb = 0.0;
      const size_t n = a.size();
      for (size_t i = 0; i < n; ++i) {
        const double x = a[i];
        const double y = b[i];
        dot += x * y;
        na += x * x;
        nb += y * y;
      }
      if (na <= 0.0 || nb <= 0.0) return 1.0;
      return 1.0 - dot / (std::sqrt(na) * std::sqrt(nb));
    }
    case DistanceMetric::kL2: {
      double sum = 0.0;
      const size_t n = a.size();
      for (size_t i = 0; i < n; ++i) {
        const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
        sum += d * d;
      }
      return sum;
    }
    case DistanceMetric::kInnerProduct:
      return -Dot(a, b);
  }
  return 0.0;
}

double SimilarityFromDistance(DistanceMetric metric, double distance) {
  switch (metric) {
    case DistanceMetric::kCosine:
      return 1.0 - distance;
    case DistanceMetric::kL2:
      return -std::sqrt(distance > 0.0 ? distance : 0.0);
    case DistanceMetric::kInnerProduct:
      return -distance;
  }
  return 0.0;
}

}  // namespace llmms::vectordb
