#include "llmms/vectordb/collection.h"

#include <algorithm>

#include "llmms/vectordb/distance.h"
#include "llmms/vectordb/flat_index.h"
#include "llmms/vectordb/hnsw_index.h"

namespace llmms::vectordb {

Collection::Collection(std::string name, const Options& options)
    : name_(std::move(name)), options_(options), index_(MakeIndex()) {}

std::unique_ptr<VectorIndex> Collection::MakeIndex() const {
  if (options_.index_kind == IndexKind::kFlat) {
    return std::make_unique<FlatIndex>(options_.dimension, options_.metric);
  }
  HnswIndex::Options hnsw;
  hnsw.M = options_.hnsw_m;
  hnsw.ef_construction = options_.hnsw_ef_construction;
  hnsw.ef_search = options_.hnsw_ef_search;
  hnsw.seed = options_.seed;
  return std::make_unique<HnswIndex>(options_.dimension, options_.metric,
                                     hnsw);
}

Status Collection::Upsert(VectorRecord record) {
  if (record.id.empty()) {
    return Status::InvalidArgument("record id must not be empty");
  }
  if (record.vector.size() != options_.dimension) {
    return Status::InvalidArgument(
        "vector dimension " + std::to_string(record.vector.size()) +
        " does not match collection dimension " +
        std::to_string(options_.dimension));
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto existing = id_to_slot_.find(record.id);
  if (existing != id_to_slot_.end()) {
    LLMMS_RETURN_NOT_OK(index_->Remove(existing->second));
    slot_to_record_.erase(existing->second);
    id_to_slot_.erase(existing);
  }
  LLMMS_ASSIGN_OR_RETURN(SlotId slot, index_->Add(record.vector));
  id_to_slot_[record.id] = slot;
  slot_to_record_[slot] = std::move(record);
  return Status::OK();
}

Status Collection::UpsertBatch(std::vector<VectorRecord> records) {
  for (auto& r : records) {
    LLMMS_RETURN_NOT_OK(Upsert(std::move(r)));
  }
  return Status::OK();
}

Status Collection::Delete(const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = id_to_slot_.find(id);
  if (it == id_to_slot_.end()) {
    return Status::NotFound("no record with id '" + id + "' in collection '" +
                            name_ + "'");
  }
  LLMMS_RETURN_NOT_OK(index_->Remove(it->second));
  slot_to_record_.erase(it->second);
  id_to_slot_.erase(it);
  return Status::OK();
}

StatusOr<VectorRecord> Collection::Get(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = id_to_slot_.find(id);
  if (it == id_to_slot_.end()) {
    return Status::NotFound("no record with id '" + id + "' in collection '" +
                            name_ + "'");
  }
  return slot_to_record_.at(it->second);
}

bool Collection::Contains(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return id_to_slot_.find(id) != id_to_slot_.end();
}

StatusOr<std::vector<QueryResult>> Collection::Query(
    const Vector& query, size_t k, const MetadataFilter& filter) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<QueryResult> out;
  if (k == 0 || slot_to_record_.empty()) return out;

  // Over-fetch when filtering so that k hits survive; bounded growth.
  size_t fetch = filter.empty() ? k : std::max<size_t>(k * 4, 16);
  for (;;) {
    LLMMS_ASSIGN_OR_RETURN(auto hits, index_->Search(query, fetch));
    out.clear();
    for (const IndexHit& hit : hits) {
      auto it = slot_to_record_.find(hit.slot);
      if (it == slot_to_record_.end()) continue;
      const VectorRecord& rec = it->second;
      if (!MatchesFilter(rec.metadata, filter)) continue;
      QueryResult qr;
      qr.id = rec.id;
      qr.score = SimilarityFromDistance(options_.metric, hit.distance);
      qr.metadata = rec.metadata;
      qr.document = rec.document;
      out.push_back(std::move(qr));
      if (out.size() >= k) break;
    }
    const bool exhausted = hits.size() < fetch || fetch >= slot_to_record_.size();
    if (out.size() >= k || exhausted || filter.empty()) break;
    fetch *= 2;
  }
  if (out.size() > k) out.resize(k);
  return out;
}

std::vector<std::string> Collection::Ids() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> ids;
  ids.reserve(id_to_slot_.size());
  for (const auto& [id, slot] : id_to_slot_) ids.push_back(id);
  return ids;
}

size_t Collection::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return id_to_slot_.size();
}

}  // namespace llmms::vectordb
