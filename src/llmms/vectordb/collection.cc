#include "llmms/vectordb/collection.h"

#include <algorithm>
#include <mutex>

#include "llmms/vectordb/distance.h"
#include "llmms/vectordb/flat_index.h"
#include "llmms/vectordb/hnsw_index.h"

namespace llmms::vectordb {

Collection::Collection(std::string name, const Options& options)
    : name_(std::move(name)), options_(options), index_(MakeIndex()) {
  quant_overfetch_.store(std::max<size_t>(1, options_.quantization.overfetch),
                         std::memory_order_relaxed);
}

std::unique_ptr<VectorIndex> Collection::MakeIndex() const {
  if (options_.index_kind == IndexKind::kFlat) {
    return std::make_unique<FlatIndex>(options_.dimension, options_.metric);
  }
  HnswIndex::Options hnsw;
  hnsw.M = options_.hnsw_m;
  hnsw.ef_construction = options_.hnsw_ef_construction;
  hnsw.ef_search = options_.hnsw_ef_search;
  hnsw.seed = options_.seed;
  return std::make_unique<HnswIndex>(options_.dimension, options_.metric,
                                     hnsw);
}

Status Collection::TrainQuantizerLocked() {
  // Collect the live vectors in slot order so the code index's slot
  // assignment is deterministic for a given insertion history.
  std::vector<std::pair<SlotId, const Vector*>> live;
  live.reserve(id_to_slot_.size());
  for (const auto& [id, slot] : id_to_slot_) {
    const Vector* v = index_->GetVector(slot);
    if (v != nullptr) live.emplace_back(slot, v);
  }
  std::sort(live.begin(), live.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<Vector> sample;
  sample.reserve(live.size());
  for (const auto& [slot, v] : live) sample.push_back(*v);

  ScalarQuantizer quantizer;
  LLMMS_RETURN_NOT_OK(quantizer.Train(sample));
  auto qindex =
      std::make_unique<QuantizedFlatIndex>(quantizer, options_.metric);
  std::unordered_map<SlotId, SlotId> slot_to_qslot;
  std::unordered_map<SlotId, SlotId> qslot_to_slot;
  for (const auto& [slot, v] : live) {
    LLMMS_ASSIGN_OR_RETURN(SlotId qslot, qindex->Add(*v));
    slot_to_qslot[slot] = qslot;
    qslot_to_slot[qslot] = slot;
  }
  qindex_ = std::move(qindex);
  slot_to_qslot_ = std::move(slot_to_qslot);
  qslot_to_slot_ = std::move(qslot_to_slot);
  return Status::OK();
}

Status Collection::AddToQuantizedLocked(SlotId slot, const Vector& vector) {
  LLMMS_ASSIGN_OR_RETURN(SlotId qslot, qindex_->Add(vector));
  slot_to_qslot_[slot] = qslot;
  qslot_to_slot_[qslot] = slot;
  return Status::OK();
}

Status Collection::Upsert(VectorRecord record) {
  if (record.id.empty()) {
    return Status::InvalidArgument("record id must not be empty");
  }
  if (record.vector.size() != options_.dimension) {
    return Status::InvalidArgument(
        "vector dimension " + std::to_string(record.vector.size()) +
        " does not match collection dimension " +
        std::to_string(options_.dimension));
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto existing = id_to_slot_.find(record.id);
  if (existing != id_to_slot_.end()) {
    LLMMS_RETURN_NOT_OK(index_->Remove(existing->second));
    if (qindex_ != nullptr) {
      auto q = slot_to_qslot_.find(existing->second);
      if (q != slot_to_qslot_.end()) {
        LLMMS_RETURN_NOT_OK(qindex_->Remove(q->second));
        qslot_to_slot_.erase(q->second);
        slot_to_qslot_.erase(q);
      }
    }
    slot_to_record_.erase(existing->second);
    id_to_slot_.erase(existing);
  }
  LLMMS_ASSIGN_OR_RETURN(SlotId slot, index_->Add(record.vector));
  id_to_slot_[record.id] = slot;
  slot_to_record_[slot] = std::move(record);
  if (options_.quantization.enabled) {
    if (qindex_ != nullptr) {
      LLMMS_RETURN_NOT_OK(
          AddToQuantizedLocked(slot, slot_to_record_[slot].vector));
    } else if (id_to_slot_.size() >=
               std::max<size_t>(1, options_.quantization.train_size)) {
      LLMMS_RETURN_NOT_OK(TrainQuantizerLocked());
    }
  }
  return Status::OK();
}

Status Collection::UpsertBatch(std::vector<VectorRecord> records) {
  for (auto& r : records) {
    LLMMS_RETURN_NOT_OK(Upsert(std::move(r)));
  }
  return Status::OK();
}

Status Collection::Delete(const std::string& id) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = id_to_slot_.find(id);
  if (it == id_to_slot_.end()) {
    return Status::NotFound("no record with id '" + id + "' in collection '" +
                            name_ + "'");
  }
  LLMMS_RETURN_NOT_OK(index_->Remove(it->second));
  if (qindex_ != nullptr) {
    auto q = slot_to_qslot_.find(it->second);
    if (q != slot_to_qslot_.end()) {
      LLMMS_RETURN_NOT_OK(qindex_->Remove(q->second));
      qslot_to_slot_.erase(q->second);
      slot_to_qslot_.erase(q);
    }
  }
  slot_to_record_.erase(it->second);
  id_to_slot_.erase(it);
  return Status::OK();
}

StatusOr<VectorRecord> Collection::Get(const std::string& id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = id_to_slot_.find(id);
  if (it == id_to_slot_.end()) {
    return Status::NotFound("no record with id '" + id + "' in collection '" +
                            name_ + "'");
  }
  return slot_to_record_.at(it->second);
}

bool Collection::Contains(const std::string& id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return id_to_slot_.find(id) != id_to_slot_.end();
}

StatusOr<std::vector<IndexHit>> Collection::CandidatesLocked(
    const Vector& query, size_t fetch) const {
  if (qindex_ == nullptr || qindex_->size() == 0) {
    return index_->Search(query, fetch);
  }
  // Two-stage path: the int8 scan proposes fetch*overfetch candidates, the
  // exact distance against the stored full-precision vector re-ranks them.
  const size_t overfetch = quant_overfetch_.load(std::memory_order_relaxed);
  LLMMS_ASSIGN_OR_RETURN(auto qhits, qindex_->Search(query, fetch * overfetch));
  std::vector<IndexHit> hits;
  hits.reserve(qhits.size());
  for (const IndexHit& qh : qhits) {
    auto it = qslot_to_slot_.find(qh.slot);
    if (it == qslot_to_slot_.end()) continue;
    const Vector* v = index_->GetVector(it->second);
    if (v == nullptr) continue;
    hits.push_back(IndexHit{it->second, Distance(options_.metric, query, *v)});
  }
  std::sort(hits.begin(), hits.end(), [](const IndexHit& a, const IndexHit& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.slot < b.slot;
  });
  if (hits.size() > fetch) hits.resize(fetch);
  return hits;
}

StatusOr<std::vector<QueryResult>> Collection::Query(
    const Vector& query, size_t k, const MetadataFilter& filter) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  queries_.fetch_add(1, std::memory_order_relaxed);
  std::vector<QueryResult> out;
  if (k == 0 || slot_to_record_.empty()) return out;

  struct Kept {
    double distance;
    const VectorRecord* record;
  };
  // The selected top-k is ordered by (distance, id) while the index cuts
  // its candidate list by (distance, slot), so fetch at least one past k:
  // only seeing a strictly-farther candidate proves no tie straddles the
  // boundary. Filters over-fetch more aggressively so k survivors remain.
  size_t fetch = filter.empty() ? k + 1 : std::max<size_t>(k * 4, 16);
  std::vector<Kept> kept;
  for (;;) {
    LLMMS_ASSIGN_OR_RETURN(auto hits, CandidatesLocked(query, fetch));
    kept.clear();
    for (const IndexHit& hit : hits) {
      auto it = slot_to_record_.find(hit.slot);
      if (it == slot_to_record_.end()) continue;
      if (!MatchesFilter(it->second.metadata, filter)) continue;
      kept.push_back(Kept{hit.distance, &it->second});
    }
    std::sort(kept.begin(), kept.end(), [](const Kept& a, const Kept& b) {
      if (a.distance != b.distance) return a.distance < b.distance;
      return a.record->id < b.record->id;
    });
    const bool exhausted =
        hits.size() < fetch || fetch >= slot_to_record_.size();
    if (exhausted) break;
    // The boundary is decided once the worst fetched candidate is strictly
    // farther than the k-th kept one; otherwise an unfetched record could
    // tie into the top-k and win on id — grow and look again.
    if (kept.size() >= k && hits.back().distance > kept[k - 1].distance) break;
    fetch *= 2;
  }
  if (kept.size() > k) kept.resize(k);
  out.reserve(kept.size());
  for (const Kept& item : kept) {
    const VectorRecord& rec = *item.record;
    QueryResult qr;
    qr.id = rec.id;
    qr.score = SimilarityFromDistance(options_.metric, item.distance);
    qr.metadata = rec.metadata;
    qr.document = rec.document;
    out.push_back(std::move(qr));
  }
  return out;
}

std::vector<std::string> Collection::Ids() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::string> ids;
  ids.reserve(id_to_slot_.size());
  for (const auto& [id, slot] : id_to_slot_) ids.push_back(id);
  return ids;
}

size_t Collection::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return id_to_slot_.size();
}

bool Collection::quantized() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return qindex_ != nullptr;
}

size_t Collection::approx_vector_bytes() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  size_t bytes = id_to_slot_.size() * options_.dimension * sizeof(float);
  if (qindex_ != nullptr) bytes += qindex_->code_bytes();
  return bytes;
}

void Collection::set_quantization_overfetch(size_t overfetch) {
  quant_overfetch_.store(std::max<size_t>(1, overfetch),
                         std::memory_order_relaxed);
}

}  // namespace llmms::vectordb
