#include "llmms/vectordb/flat_index.h"

#include <algorithm>

#include "llmms/vectordb/distance.h"

namespace llmms::vectordb {

StatusOr<SlotId> FlatIndex::Add(const Vector& vector) {
  if (vector.size() != dimension_) {
    return Status::InvalidArgument(
        "vector dimension " + std::to_string(vector.size()) +
        " does not match index dimension " + std::to_string(dimension_));
  }
  vectors_.push_back(vector);
  removed_.push_back(false);
  ++live_count_;
  return static_cast<SlotId>(vectors_.size() - 1);
}

Status FlatIndex::Remove(SlotId slot) {
  if (slot >= vectors_.size()) {
    return Status::NotFound("slot " + std::to_string(slot) + " out of range");
  }
  if (!removed_[slot]) {
    removed_[slot] = true;
    --live_count_;
  }
  return Status::OK();
}

StatusOr<std::vector<IndexHit>> FlatIndex::Search(const Vector& query,
                                                  size_t k) const {
  if (query.size() != dimension_) {
    return Status::InvalidArgument("query dimension mismatch");
  }
  std::vector<IndexHit> hits;
  hits.reserve(vectors_.size());
  for (size_t i = 0; i < vectors_.size(); ++i) {
    if (removed_[i]) continue;
    hits.push_back(
        IndexHit{static_cast<SlotId>(i), Distance(metric_, query, vectors_[i])});
  }
  const size_t limit = std::min(k, hits.size());
  std::partial_sort(hits.begin(), hits.begin() + static_cast<ptrdiff_t>(limit),
                    hits.end(), [](const IndexHit& a, const IndexHit& b) {
                      if (a.distance != b.distance) {
                        return a.distance < b.distance;
                      }
                      return a.slot < b.slot;
                    });
  hits.resize(limit);
  return hits;
}

const Vector* FlatIndex::GetVector(SlotId slot) const {
  if (slot >= vectors_.size() || removed_[slot]) return nullptr;
  return &vectors_[slot];
}

}  // namespace llmms::vectordb
