#ifndef LLMMS_VECTORDB_SHARDED_COLLECTION_H_
#define LLMMS_VECTORDB_SHARDED_COLLECTION_H_

#include <memory>
#include <string>
#include <vector>

#include "llmms/common/result.h"
#include "llmms/common/status.h"
#include "llmms/vectordb/collection.h"
#include "llmms/vectordb/types.h"

namespace llmms {
class ThreadPool;
}  // namespace llmms

namespace llmms::vectordb {

// Hash-partitions records across N single-writer Collection shards
// (FNV-1a over the record id, mod N), fans queries out over every shard,
// and merges the per-shard top-k lists with a deterministic heap merge
// under the (score desc, id asc) total order Collection::Query itself uses.
// Because that order is total and partitioning is by id, the merged top-k
// is byte-identical to what one unsharded Collection holding the same
// records returns on the exact path — sharding changes placement, never
// results (DESIGN.md §15).
//
// Writers contend only on their own shard, so ingest and queries to
// different shards proceed in parallel; within a shard, Collection's
// shared/exclusive lock lets concurrent readers share.
class ShardedCollection final : public CollectionBase {
 public:
  struct Options {
    // Per-shard collection options (every shard is configured identically;
    // each shard trains its own quantizer on its own records).
    Collection::Options collection;
    size_t num_shards = 1;
    // Optional fan-out pool for queries; shards are searched sequentially
    // when null. Must not be a pool the calling task itself runs on — a
    // query waiting for its own pool's slots deadlocks when the pool is
    // saturated. Must outlive the collection.
    ThreadPool* pool = nullptr;
  };

  // Per-shard gauges for /api/health.
  struct ShardStats {
    size_t records = 0;
    uint64_t queries = 0;
    size_t vector_bytes = 0;
    bool quantized = false;
  };

  ShardedCollection(std::string name, const Options& options);

  ShardedCollection(const ShardedCollection&) = delete;
  ShardedCollection& operator=(const ShardedCollection&) = delete;

  // Which shard owns `id` under `num_shards` partitions (FNV-1a, stable
  // across processes — durable manifests and snapshots rely on it).
  static size_t ShardFor(const std::string& id, size_t num_shards);

  Status Upsert(VectorRecord record) override;
  Status UpsertBatch(std::vector<VectorRecord> records) override;
  Status Delete(const std::string& id) override;
  StatusOr<VectorRecord> Get(const std::string& id) const override;
  bool Contains(const std::string& id) const override;
  StatusOr<std::vector<QueryResult>> Query(
      const Vector& query, size_t k,
      const MetadataFilter& filter = {}) const override;
  std::vector<std::string> Ids() const override;
  size_t size() const override;
  const std::string& name() const override { return name_; }

  const Options& options() const { return options_; }
  size_t num_shards() const { return shards_.size(); }
  Collection* shard(size_t i) { return shards_[i].get(); }
  const Collection* shard(size_t i) const { return shards_[i].get(); }
  std::vector<ShardStats> Stats() const;
  // Runtime recall/QPS knob, forwarded to every shard.
  void set_quantization_overfetch(size_t overfetch);

 private:
  std::string name_;
  Options options_;
  std::vector<std::unique_ptr<Collection>> shards_;
};

// Merges per-shard top-k result lists (each already sorted by
// (score desc, id asc)) into one global top-k under the same order. Exposed
// for the shard property tests.
std::vector<QueryResult> MergeShardResults(
    std::vector<std::vector<QueryResult>> per_shard, size_t k);

}  // namespace llmms::vectordb

#endif  // LLMMS_VECTORDB_SHARDED_COLLECTION_H_
