#ifndef LLMMS_VECTORDB_FLAT_INDEX_H_
#define LLMMS_VECTORDB_FLAT_INDEX_H_

#include <vector>

#include "llmms/vectordb/index.h"

namespace llmms::vectordb {

// Exact brute-force index: O(n·d) per query. The reference implementation
// against which HnswIndex recall is measured, and the right choice for the
// small per-session collections the RAG pipeline creates.
class FlatIndex final : public VectorIndex {
 public:
  FlatIndex(size_t dimension, DistanceMetric metric)
      : dimension_(dimension), metric_(metric) {}

  StatusOr<SlotId> Add(const Vector& vector) override;
  Status Remove(SlotId slot) override;
  StatusOr<std::vector<IndexHit>> Search(const Vector& query,
                                         size_t k) const override;
  size_t size() const override { return live_count_; }
  size_t dimension() const override { return dimension_; }
  DistanceMetric metric() const override { return metric_; }
  const Vector* GetVector(SlotId slot) const override;

 private:
  size_t dimension_;
  DistanceMetric metric_;
  std::vector<Vector> vectors_;
  std::vector<bool> removed_;
  size_t live_count_ = 0;
};

}  // namespace llmms::vectordb

#endif  // LLMMS_VECTORDB_FLAT_INDEX_H_
