#ifndef LLMMS_VECTORDB_DISTANCE_H_
#define LLMMS_VECTORDB_DISTANCE_H_

#include "llmms/vectordb/types.h"

namespace llmms::vectordb {

// Distance for index-internal ordering: smaller = closer, for every metric.
// kCosine -> 1 - cos, kL2 -> squared L2, kInnerProduct -> -dot.
double Distance(DistanceMetric metric, const Vector& a, const Vector& b);

// User-facing similarity: larger = closer. kCosine -> cos, kL2 -> -sqrt(d2),
// kInnerProduct -> dot.
double SimilarityFromDistance(DistanceMetric metric, double distance);

}  // namespace llmms::vectordb

#endif  // LLMMS_VECTORDB_DISTANCE_H_
