#ifndef LLMMS_VECTORDB_DATABASE_H_
#define LLMMS_VECTORDB_DATABASE_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "llmms/common/fs.h"
#include "llmms/common/result.h"
#include "llmms/common/status.h"
#include "llmms/vectordb/collection.h"

namespace llmms::vectordb {

// Top-level vector database: a registry of named collections, mirroring the
// ChromaDB client API (create_collection / get_collection / delete_collection
// / list_collections) plus whole-database binary persistence.
class VectorDatabase {
 public:
  VectorDatabase() = default;

  VectorDatabase(const VectorDatabase&) = delete;
  VectorDatabase& operator=(const VectorDatabase&) = delete;

  // Creates a new collection; AlreadyExists if the name is taken.
  StatusOr<std::shared_ptr<Collection>> CreateCollection(
      const std::string& name, const Collection::Options& options);

  // Returns an existing collection or NotFound.
  StatusOr<std::shared_ptr<Collection>> GetCollection(
      const std::string& name) const;

  // Returns the collection, creating it if absent. Fails if an existing
  // collection has incompatible options (dimension/metric mismatch).
  StatusOr<std::shared_ptr<Collection>> GetOrCreateCollection(
      const std::string& name, const Collection::Options& options);

  Status DropCollection(const std::string& name);

  std::vector<std::string> ListCollections() const;
  size_t collection_count() const;

  // Persists every collection (records only; indexes are rebuilt on load) to
  // a single binary file, and restores it. Save goes through the atomic
  // tmp + fsync + rename + fsync-dir barrier (common/fs.h AtomicWriteFile):
  // a crash at any point leaves the old snapshot or the new one, never a
  // torn mixture. The overloads without `fs` use FileSystem::Default().
  Status Save(FileSystem* fs, const std::string& path) const;
  Status Save(const std::string& path) const;
  static StatusOr<std::unique_ptr<VectorDatabase>> Load(
      FileSystem* fs, const std::string& path);
  static StatusOr<std::unique_ptr<VectorDatabase>> Load(
      const std::string& path);

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<Collection>> collections_;
};

}  // namespace llmms::vectordb

#endif  // LLMMS_VECTORDB_DATABASE_H_
