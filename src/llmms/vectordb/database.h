#ifndef LLMMS_VECTORDB_DATABASE_H_
#define LLMMS_VECTORDB_DATABASE_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "llmms/common/fs.h"
#include "llmms/common/result.h"
#include "llmms/common/status.h"
#include "llmms/vectordb/collection.h"
#include "llmms/vectordb/sharded_collection.h"

namespace llmms::vectordb {

// Top-level vector database: a registry of named collections, mirroring the
// ChromaDB client API (create_collection / get_collection / delete_collection
// / list_collections) plus whole-database binary persistence. Plain and
// sharded collections share one namespace: a name identifies exactly one of
// the two, and the usual registry calls (Drop/List/count) see both.
class VectorDatabase {
 public:
  VectorDatabase() = default;

  VectorDatabase(const VectorDatabase&) = delete;
  VectorDatabase& operator=(const VectorDatabase&) = delete;

  // Creates a new collection; AlreadyExists if the name is taken.
  StatusOr<std::shared_ptr<Collection>> CreateCollection(
      const std::string& name, const Collection::Options& options);

  // Returns an existing collection or NotFound.
  StatusOr<std::shared_ptr<Collection>> GetCollection(
      const std::string& name) const;

  // Returns the collection, creating it if absent. Fails if an existing
  // collection has incompatible options (dimension/metric mismatch).
  StatusOr<std::shared_ptr<Collection>> GetOrCreateCollection(
      const std::string& name, const Collection::Options& options);

  // Sharded variants: hash-partitioned collections for large corpora
  // (see ShardedCollection). Same namespace as plain collections.
  StatusOr<std::shared_ptr<ShardedCollection>> CreateShardedCollection(
      const std::string& name, const ShardedCollection::Options& options);
  StatusOr<std::shared_ptr<ShardedCollection>> GetShardedCollection(
      const std::string& name) const;
  StatusOr<std::shared_ptr<ShardedCollection>> GetOrCreateShardedCollection(
      const std::string& name, const ShardedCollection::Options& options);

  Status DropCollection(const std::string& name);

  std::vector<std::string> ListCollections() const;
  size_t collection_count() const;

  // Per-collection observability for /api/health: one entry per registered
  // collection, with one ShardStats per shard (plain collections report a
  // single shard).
  struct CollectionStats {
    std::string name;
    bool sharded = false;
    std::vector<ShardedCollection::ShardStats> shards;
  };
  std::vector<CollectionStats> Stats() const;

  // Persists every collection (records only; indexes are rebuilt on load) to
  // a single binary file, and restores it. Save goes through the atomic
  // tmp + fsync + rename + fsync-dir barrier (common/fs.h AtomicWriteFile):
  // a crash at any point leaves the old snapshot or the new one, never a
  // torn mixture. The overloads without `fs` use FileSystem::Default().
  //
  // Format v2 adds quantization options per plain collection and a sharded-
  // collection section (records stored merged, re-partitioned by hash on
  // load); v1 files still load. Save always writes v2.
  Status Save(FileSystem* fs, const std::string& path) const;
  Status Save(const std::string& path) const;
  static StatusOr<std::unique_ptr<VectorDatabase>> Load(
      FileSystem* fs, const std::string& path);
  static StatusOr<std::unique_ptr<VectorDatabase>> Load(
      const std::string& path);

 private:
  bool NameTakenLocked(const std::string& name) const {
    return collections_.count(name) > 0 || sharded_.count(name) > 0;
  }

  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<Collection>> collections_;
  std::unordered_map<std::string, std::shared_ptr<ShardedCollection>> sharded_;
};

}  // namespace llmms::vectordb

#endif  // LLMMS_VECTORDB_DATABASE_H_
