#include "llmms/vectordb/wal.h"

#include <cstring>

#include "llmms/common/rng.h"

namespace llmms::vectordb {
namespace {

// Record framing (v2): [u32 payload length][u32 FNV checksum][u64 sequence]
// [payload]; checksum over sequence + payload. Payload: 'U' + record fields,
// or 'D' + id.
constexpr size_t kFrameHeaderBytes = 16;  // len(4) + checksum(4) + seq(8)

void PutU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutString(std::string* out, const std::string& s) {
  PutU64(out, s.size());
  out->append(s);
}

// Cursor-based payload reader; every getter returns false on truncation.
// Bounds checks are phrased as `len > remaining` so that hostile declared
// lengths near UINT64_MAX cannot overflow `pos_ + len` and wrap past the
// check (tests/fuzz_test.cc feeds exactly those).
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool GetU64(uint64_t* v) {
    if (sizeof(*v) > data_.size() - pos_) return false;
    std::memcpy(v, data_.data() + pos_, sizeof(*v));
    pos_ += sizeof(*v);
    return true;
  }

  bool GetString(std::string* s) {
    uint64_t len = 0;
    if (!GetU64(&len) || len > data_.size() - pos_) return false;
    s->assign(data_.data() + pos_, len);
    pos_ += len;
    return true;
  }

  bool GetByte(char* c) {
    if (pos_ >= data_.size()) return false;
    *c = data_[pos_++];
    return true;
  }

  bool GetFloats(size_t n, Vector* v) {
    if (n > (data_.size() - pos_) / sizeof(float)) return false;
    v->resize(n);
    std::memcpy(v->data(), data_.data() + pos_, n * sizeof(float));
    pos_ += n * sizeof(float);
    return true;
  }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

uint32_t Checksum(std::string_view covered) {
  return static_cast<uint32_t>(HashBytes(covered.data(), covered.size()));
}

std::string SerializeUpsert(const VectorRecord& record) {
  std::string payload;
  payload.push_back('U');
  PutString(&payload, record.id);
  PutU64(&payload, record.vector.size());
  payload.append(reinterpret_cast<const char*>(record.vector.data()),
                 record.vector.size() * sizeof(float));
  PutU64(&payload, record.metadata.size());
  for (const auto& [k, v] : record.metadata) {
    PutString(&payload, k);
    PutString(&payload, v);
  }
  PutString(&payload, record.document);
  return payload;
}

struct Frame {
  uint64_t sequence = 0;
  std::string_view payload;
};

// Parses the frame at `pos`; returns false (a torn tail) when the bytes at
// `pos` do not form a complete, checksum-valid record.
bool ParseFrame(std::string_view contents, size_t pos, Frame* frame) {
  if (kFrameHeaderBytes > contents.size() - pos) return false;
  uint32_t length = 0;
  uint32_t checksum = 0;
  std::memcpy(&length, contents.data() + pos, 4);
  std::memcpy(&checksum, contents.data() + pos + 4, 4);
  if (length > contents.size() - pos - kFrameHeaderBytes) return false;
  // Checksum covers sequence + payload so a record can neither be torn nor
  // transplanted from another log position without detection.
  const std::string_view covered(contents.data() + pos + 8, 8 + length);
  if (Checksum(covered) != checksum) return false;
  std::memcpy(&frame->sequence, contents.data() + pos + 8, 8);
  frame->payload = std::string_view(contents.data() + pos + kFrameHeaderBytes,
                                    length);
  return true;
}

// Scans an existing log for the last intact record's sequence number, so a
// reopened log continues the run rather than restarting at 1.
uint64_t ScanLastSequence(std::string_view contents) {
  uint64_t last = 0;
  size_t pos = 0;
  while (pos < contents.size()) {
    Frame frame;
    if (!ParseFrame(contents, pos, &frame)) break;
    last = frame.sequence;
    pos += kFrameHeaderBytes + frame.payload.size();
  }
  return last;
}

}  // namespace

WriteAheadLog::WriteAheadLog(FileSystem* fs, std::string path,
                             const Options& options,
                             std::unique_ptr<WritableFile> file,
                             uint64_t sequence)
    : fs_(fs),
      path_(std::move(path)),
      options_(options),
      file_(std::move(file)),
      sequence_(sequence) {}

WriteAheadLog::~WriteAheadLog() = default;

StatusOr<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    FileSystem* fs, const std::string& path, const Options& options) {
  uint64_t sequence = 0;
  auto existing = fs->ReadFile(path);
  if (existing.ok()) {
    sequence = ScanLastSequence(*existing);
  } else if (!existing.status().IsNotFound()) {
    return existing.status();
  }
  const bool created = !existing.ok();
  auto file = fs->OpenAppend(path);
  if (!file.ok()) {
    return Status::IOError("cannot open WAL for append: " + path + ": " +
                           file.status().message());
  }
  if (created) {
    // A freshly created log is only durable once its directory entry is:
    // without this barrier a crash can drop the whole file — including
    // records that were individually fsynced and acked — because fsync on
    // the file does not persist its name in the parent directory.
    LLMMS_RETURN_NOT_OK(fs->SyncDir(DirnameOf(path)));
  }
  return std::unique_ptr<WriteAheadLog>(
      new WriteAheadLog(fs, path, options, std::move(*file), sequence));
}

StatusOr<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    const std::string& path) {
  return Open(FileSystem::Default(), path, Options{});
}

Status WriteAheadLog::AppendRecord(const std::string& payload) {
  if (broken_) {
    return Status::FailedPrecondition(
        "WAL poisoned by an earlier I/O failure: " + path_);
  }
  const uint64_t sequence = sequence_ + 1;
  std::string framed;
  framed.reserve(kFrameHeaderBytes + payload.size());
  PutU32(&framed, static_cast<uint32_t>(payload.size()));
  std::string covered;
  covered.reserve(8 + payload.size());
  PutU64(&covered, sequence);
  covered += payload;
  PutU32(&framed, Checksum(covered));
  framed += covered;

  Status status = file_->Append(framed);
  if (status.ok()) {
    sequence_ = sequence;
    ++unsynced_appends_;
    switch (options_.sync_policy) {
      case SyncPolicy::kNone:
        break;
      case SyncPolicy::kGroupCommit:
        if (unsynced_appends_ >= options_.group_commit_every) {
          status = Sync();
        }
        break;
      case SyncPolicy::kEveryRecord:
        status = Sync();
        break;
    }
  }
  if (!status.ok()) {
    // An unknown number of bytes may have landed; appending more would bury
    // garbage in the middle of the log and invalidate later acked records.
    broken_ = true;
  }
  return status;
}

Status WriteAheadLog::AppendUpsert(const VectorRecord& record) {
  if (record.id.empty()) {
    return Status::InvalidArgument("record id must not be empty");
  }
  return AppendRecord(SerializeUpsert(record));
}

Status WriteAheadLog::AppendDelete(const std::string& id) {
  if (id.empty()) {
    return Status::InvalidArgument("record id must not be empty");
  }
  std::string payload;
  payload.push_back('D');
  PutString(&payload, id);
  return AppendRecord(payload);
}

Status WriteAheadLog::WriteCompacted(FileSystem* fs, const std::string& path,
                                     const CollectionBase& collection,
                                     const Options& options) {
  Status removed = fs->Remove(path);
  if (!removed.ok() && !removed.IsNotFound()) return removed;
  LLMMS_ASSIGN_OR_RETURN(auto fresh, Open(fs, path, options));
  for (const auto& id : collection.Ids()) {
    LLMMS_ASSIGN_OR_RETURN(auto record, collection.Get(id));
    LLMMS_RETURN_NOT_OK(fresh->AppendUpsert(record));
  }
  // The rewrite replaces a whole log; it must be durable before anything
  // points at it, whatever the append-path sync policy is.
  return fresh->Sync();
}

Status WriteAheadLog::Sync() {
  if (broken_) {
    return Status::FailedPrecondition(
        "WAL poisoned by an earlier I/O failure: " + path_);
  }
  Status status = file_->Sync();
  if (status.ok()) {
    unsynced_appends_ = 0;
  } else {
    broken_ = true;  // durability of the tail is now unknown
  }
  return status;
}

StatusOr<WriteAheadLog::ReplayStats> WriteAheadLog::Replay(
    FileSystem* fs, const std::string& path, Collection* collection) {
  ReplayStats stats;
  auto contents_or = fs->ReadFile(path);
  if (!contents_or.ok()) {
    if (contents_or.status().IsNotFound()) return stats;  // no log yet
    return contents_or.status();
  }
  const std::string contents = std::move(*contents_or);

  auto& counters = GlobalStorageCounters();
  counters.wal_replays.fetch_add(1, std::memory_order_relaxed);

  size_t pos = 0;
  while (pos < contents.size()) {
    Frame frame;
    if (!ParseFrame(contents, pos, &frame)) {
      stats.torn_tail = true;
      counters.torn_tails_recovered.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    if (frame.sequence != stats.last_sequence + 1) {
      // An intact record with the wrong sequence number: a lost or
      // reordered write, not a torn tail. Stop applying — everything after
      // the gap is untrustworthy.
      stats.sequence_break = true;
      counters.sequence_breaks.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    pos += kFrameHeaderBytes + frame.payload.size();

    Reader reader(frame.payload);
    char op = 0;
    if (!reader.GetByte(&op)) {
      return Status::IOError("corrupt WAL record in " + path);
    }
    if (op == 'U') {
      VectorRecord record;
      uint64_t dim = 0;
      uint64_t num_meta = 0;
      if (!reader.GetString(&record.id) || !reader.GetU64(&dim) ||
          !reader.GetFloats(static_cast<size_t>(dim), &record.vector) ||
          !reader.GetU64(&num_meta)) {
        return Status::IOError("corrupt WAL upsert record in " + path);
      }
      for (uint64_t i = 0; i < num_meta; ++i) {
        std::string k;
        std::string v;
        if (!reader.GetString(&k) || !reader.GetString(&v)) {
          return Status::IOError("corrupt WAL metadata in " + path);
        }
        record.metadata[std::move(k)] = std::move(v);
      }
      if (!reader.GetString(&record.document)) {
        return Status::IOError("corrupt WAL document in " + path);
      }
      LLMMS_RETURN_NOT_OK(collection->Upsert(std::move(record)));
      ++stats.upserts;
    } else if (op == 'D') {
      std::string id;
      if (!reader.GetString(&id)) {
        return Status::IOError("corrupt WAL delete record in " + path);
      }
      Status status = collection->Delete(id);
      if (!status.ok() && !status.IsNotFound()) return status;
      ++stats.deletes;
    } else {
      return Status::IOError("unknown WAL record type in " + path);
    }
    stats.last_sequence = frame.sequence;
    counters.wal_records_replayed.fetch_add(1, std::memory_order_relaxed);
  }
  return stats;
}

StatusOr<WriteAheadLog::ReplayStats> WriteAheadLog::Replay(
    const std::string& path, Collection* collection) {
  return Replay(FileSystem::Default(), path, collection);
}

}  // namespace llmms::vectordb
