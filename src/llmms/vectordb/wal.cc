#include "llmms/vectordb/wal.h"

#include <cstring>

#include "llmms/common/rng.h"

namespace llmms::vectordb {
namespace {

// Record framing: [u32 payload length][u32 FNV checksum][payload].
// Payload: 'U' + record fields, or 'D' + id.

void PutU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutString(std::string* out, const std::string& s) {
  PutU64(out, s.size());
  out->append(s);
}

// Cursor-based payload reader; every getter returns false on truncation.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool GetU64(uint64_t* v) {
    if (pos_ + sizeof(*v) > data_.size()) return false;
    std::memcpy(v, data_.data() + pos_, sizeof(*v));
    pos_ += sizeof(*v);
    return true;
  }

  bool GetString(std::string* s) {
    uint64_t len = 0;
    if (!GetU64(&len) || pos_ + len > data_.size()) return false;
    s->assign(data_.data() + pos_, len);
    pos_ += len;
    return true;
  }

  bool GetByte(char* c) {
    if (pos_ >= data_.size()) return false;
    *c = data_[pos_++];
    return true;
  }

  bool GetFloats(size_t n, Vector* v) {
    if (pos_ + n * sizeof(float) > data_.size()) return false;
    v->resize(n);
    std::memcpy(v->data(), data_.data() + pos_, n * sizeof(float));
    pos_ += n * sizeof(float);
    return true;
  }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

uint32_t Checksum(std::string_view payload) {
  return static_cast<uint32_t>(HashBytes(payload.data(), payload.size()));
}

std::string SerializeUpsert(const VectorRecord& record) {
  std::string payload;
  payload.push_back('U');
  PutString(&payload, record.id);
  PutU64(&payload, record.vector.size());
  payload.append(reinterpret_cast<const char*>(record.vector.data()),
                 record.vector.size() * sizeof(float));
  PutU64(&payload, record.metadata.size());
  for (const auto& [k, v] : record.metadata) {
    PutString(&payload, k);
    PutString(&payload, v);
  }
  PutString(&payload, record.document);
  return payload;
}

}  // namespace

WriteAheadLog::WriteAheadLog(std::string path, std::FILE* file)
    : path_(std::move(path)), file_(file) {}

WriteAheadLog::~WriteAheadLog() {
  if (file_ != nullptr) std::fclose(file_);
}

StatusOr<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "ab");
  if (file == nullptr) {
    return Status::IOError("cannot open WAL for append: " + path);
  }
  return std::unique_ptr<WriteAheadLog>(new WriteAheadLog(path, file));
}

Status WriteAheadLog::AppendRecord(const std::string& payload) {
  std::string framed;
  PutU32(&framed, static_cast<uint32_t>(payload.size()));
  PutU32(&framed, Checksum(payload));
  framed += payload;
  if (std::fwrite(framed.data(), 1, framed.size(), file_) != framed.size()) {
    return Status::IOError("WAL append failed: " + path_);
  }
  if (std::fflush(file_) != 0) {
    return Status::IOError("WAL flush failed: " + path_);
  }
  return Status::OK();
}

Status WriteAheadLog::AppendUpsert(const VectorRecord& record) {
  if (record.id.empty()) {
    return Status::InvalidArgument("record id must not be empty");
  }
  return AppendRecord(SerializeUpsert(record));
}

Status WriteAheadLog::AppendDelete(const std::string& id) {
  if (id.empty()) {
    return Status::InvalidArgument("record id must not be empty");
  }
  std::string payload;
  payload.push_back('D');
  PutString(&payload, id);
  return AppendRecord(payload);
}

StatusOr<WriteAheadLog::ReplayStats> WriteAheadLog::Replay(
    const std::string& path, Collection* collection) {
  ReplayStats stats;
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return stats;  // no log yet: nothing to replay

  std::string contents;
  {
    char buffer[1 << 16];
    size_t n = 0;
    while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
      contents.append(buffer, n);
    }
    std::fclose(file);
  }

  size_t pos = 0;
  while (pos < contents.size()) {
    if (pos + 8 > contents.size()) {
      stats.torn_tail = true;
      break;
    }
    uint32_t length = 0;
    uint32_t checksum = 0;
    std::memcpy(&length, contents.data() + pos, 4);
    std::memcpy(&checksum, contents.data() + pos + 4, 4);
    if (pos + 8 + length > contents.size()) {
      stats.torn_tail = true;
      break;
    }
    const std::string_view payload(contents.data() + pos + 8, length);
    if (Checksum(payload) != checksum) {
      stats.torn_tail = true;
      break;
    }
    pos += 8 + length;

    Reader reader(payload);
    char op = 0;
    if (!reader.GetByte(&op)) {
      stats.torn_tail = true;
      break;
    }
    if (op == 'U') {
      VectorRecord record;
      uint64_t dim = 0;
      uint64_t num_meta = 0;
      if (!reader.GetString(&record.id) || !reader.GetU64(&dim) ||
          !reader.GetFloats(static_cast<size_t>(dim), &record.vector) ||
          !reader.GetU64(&num_meta)) {
        return Status::IOError("corrupt WAL upsert record in " + path);
      }
      for (uint64_t i = 0; i < num_meta; ++i) {
        std::string k;
        std::string v;
        if (!reader.GetString(&k) || !reader.GetString(&v)) {
          return Status::IOError("corrupt WAL metadata in " + path);
        }
        record.metadata[std::move(k)] = std::move(v);
      }
      if (!reader.GetString(&record.document)) {
        return Status::IOError("corrupt WAL document in " + path);
      }
      LLMMS_RETURN_NOT_OK(collection->Upsert(std::move(record)));
      ++stats.upserts;
    } else if (op == 'D') {
      std::string id;
      if (!reader.GetString(&id)) {
        return Status::IOError("corrupt WAL delete record in " + path);
      }
      Status status = collection->Delete(id);
      if (!status.ok() && !status.IsNotFound()) return status;
      ++stats.deletes;
    } else {
      return Status::IOError("unknown WAL record type in " + path);
    }
  }
  return stats;
}

}  // namespace llmms::vectordb
