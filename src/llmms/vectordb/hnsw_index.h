#ifndef LLMMS_VECTORDB_HNSW_INDEX_H_
#define LLMMS_VECTORDB_HNSW_INDEX_H_

#include <cstdint>
#include <vector>

#include "llmms/common/rng.h"
#include "llmms/vectordb/index.h"

namespace llmms::vectordb {

// Hierarchical Navigable Small World graph index (Malkov & Yashunin, 2018) —
// the approximate-nearest-neighbor structure behind Chroma's and FAISS's
// default indexes, which the paper uses for "sub-millisecond" top-k
// retrieval (§7.1).
//
// Levels are drawn from a geometric distribution with a deterministic,
// seeded RNG; neighbor selection uses the paper's select-neighbors
// heuristic. Deleted slots are tombstoned: they still route traversals but
// never appear in results.
class HnswIndex final : public VectorIndex {
 public:
  struct Options {
    // Max bidirectional links per node on levels > 0; level 0 allows 2*M.
    size_t M = 16;
    // Candidate-list width during construction.
    size_t ef_construction = 200;
    // Candidate-list width during search; raised automatically to k.
    size_t ef_search = 64;
    uint64_t seed = 0x48e5f1ULL;
  };

  HnswIndex(size_t dimension, DistanceMetric metric)
      : HnswIndex(dimension, metric, Options{}) {}
  HnswIndex(size_t dimension, DistanceMetric metric, const Options& options);

  StatusOr<SlotId> Add(const Vector& vector) override;
  Status Remove(SlotId slot) override;
  StatusOr<std::vector<IndexHit>> Search(const Vector& query,
                                         size_t k) const override;
  // Search with an explicit candidate-list width in place of
  // Options::ef_search (still raised to k and widened past tombstones) —
  // lets recall sweeps walk the ef axis over one built graph instead of
  // rebuilding per setting.
  StatusOr<std::vector<IndexHit>> SearchWithEf(const Vector& query, size_t k,
                                               size_t ef) const;
  size_t size() const override { return live_count_; }
  size_t dimension() const override { return dimension_; }
  DistanceMetric metric() const override { return metric_; }
  const Vector* GetVector(SlotId slot) const override;

  const Options& options() const { return options_; }
  int max_level() const { return max_level_; }

 private:
  struct Node {
    // neighbors[l] is the adjacency list at level l (0..level).
    std::vector<std::vector<SlotId>> neighbors;
    int level = 0;
    bool removed = false;
  };

  struct Candidate {
    double distance;
    SlotId slot;
    bool operator<(const Candidate& other) const {
      if (distance != other.distance) return distance < other.distance;
      return slot < other.slot;
    }
    bool operator>(const Candidate& other) const { return other < *this; }
  };

  double Dist(const Vector& a, SlotId b) const;
  int DrawLevel();

  // Greedy best-first search restricted to one level; returns up to `ef`
  // closest candidates to `query` starting from `entry`.
  std::vector<Candidate> SearchLayer(const Vector& query, SlotId entry,
                                     size_t ef, int level) const;

  // Select-neighbors heuristic (keeps diverse edges).
  std::vector<SlotId> SelectNeighbors(const Vector& query,
                                      std::vector<Candidate> candidates,
                                      size_t m) const;

  size_t MaxNeighbors(int level) const {
    return level == 0 ? options_.M * 2 : options_.M;
  }

  size_t dimension_;
  DistanceMetric metric_;
  Options options_;
  double level_lambda_;  // 1 / ln(M)

  std::vector<Vector> vectors_;
  std::vector<Node> nodes_;
  SlotId entry_point_ = 0;
  int max_level_ = -1;
  size_t live_count_ = 0;
  Rng rng_;
};

}  // namespace llmms::vectordb

#endif  // LLMMS_VECTORDB_HNSW_INDEX_H_
