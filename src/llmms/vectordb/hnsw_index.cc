#include "llmms/vectordb/hnsw_index.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <unordered_set>

#include "llmms/vectordb/distance.h"

namespace llmms::vectordb {

HnswIndex::HnswIndex(size_t dimension, DistanceMetric metric,
                     const Options& options)
    : dimension_(dimension),
      metric_(metric),
      options_(options),
      level_lambda_(1.0 / std::log(static_cast<double>(
                              options.M > 1 ? options.M : 2))),
      rng_(options.seed) {}

double HnswIndex::Dist(const Vector& a, SlotId b) const {
  return Distance(metric_, a, vectors_[b]);
}

int HnswIndex::DrawLevel() {
  double u = rng_.NextDouble();
  while (u <= 1e-12) u = rng_.NextDouble();
  const int level = static_cast<int>(-std::log(u) * level_lambda_);
  return std::min(level, 32);
}

std::vector<HnswIndex::Candidate> HnswIndex::SearchLayer(const Vector& query,
                                                         SlotId entry,
                                                         size_t ef,
                                                         int level) const {
  // Best-first search with a bounded result heap (the HNSW paper's
  // SEARCH-LAYER). `candidates` pops closest-first; `results` holds the ef
  // best found so far, with the worst on top.
  std::priority_queue<Candidate, std::vector<Candidate>,
                      std::greater<Candidate>>
      candidates;
  std::priority_queue<Candidate> results;
  std::unordered_set<SlotId> visited;

  const Candidate start{Dist(query, entry), entry};
  candidates.push(start);
  results.push(start);
  visited.insert(entry);

  while (!candidates.empty()) {
    const Candidate current = candidates.top();
    candidates.pop();
    if (!results.empty() && current.distance > results.top().distance &&
        results.size() >= ef) {
      break;
    }
    const auto& nbrs = nodes_[current.slot].neighbors;
    if (level >= static_cast<int>(nbrs.size())) continue;
    for (SlotId nbr : nbrs[static_cast<size_t>(level)]) {
      if (!visited.insert(nbr).second) continue;
      const double d = Dist(query, nbr);
      if (results.size() < ef || d < results.top().distance) {
        candidates.push(Candidate{d, nbr});
        results.push(Candidate{d, nbr});
        while (results.size() > ef) results.pop();
      }
    }
  }

  std::vector<Candidate> out;
  out.reserve(results.size());
  while (!results.empty()) {
    out.push_back(results.top());
    results.pop();
  }
  std::reverse(out.begin(), out.end());  // closest first
  return out;
}

std::vector<SlotId> HnswIndex::SelectNeighbors(
    const Vector& query, std::vector<Candidate> candidates, size_t m) const {
  // Heuristic from the HNSW paper: keep a candidate only if it is closer to
  // the query than to every already-selected neighbor. This preserves edge
  // diversity, which is what gives the graph its navigability.
  std::sort(candidates.begin(), candidates.end());
  std::vector<SlotId> selected;
  selected.reserve(m);
  std::vector<Candidate> discarded;
  for (const Candidate& c : candidates) {
    if (selected.size() >= m) break;
    bool keep = true;
    for (SlotId s : selected) {
      if (Distance(metric_, vectors_[c.slot], vectors_[s]) < c.distance) {
        keep = false;
        break;
      }
    }
    if (keep) {
      selected.push_back(c.slot);
    } else {
      discarded.push_back(c);
    }
  }
  // Backfill with the closest discarded candidates if underfull.
  for (const Candidate& c : discarded) {
    if (selected.size() >= m) break;
    selected.push_back(c.slot);
  }
  return selected;
}

StatusOr<SlotId> HnswIndex::Add(const Vector& vector) {
  if (vector.size() != dimension_) {
    return Status::InvalidArgument(
        "vector dimension " + std::to_string(vector.size()) +
        " does not match index dimension " + std::to_string(dimension_));
  }
  const SlotId slot = static_cast<SlotId>(vectors_.size());
  const int level = DrawLevel();

  vectors_.push_back(vector);
  Node node;
  node.level = level;
  node.neighbors.resize(static_cast<size_t>(level) + 1);
  nodes_.push_back(std::move(node));
  ++live_count_;

  if (slot == 0) {
    entry_point_ = slot;
    max_level_ = level;
    return slot;
  }

  SlotId current = entry_point_;
  // Greedy descent through levels above the new node's level.
  for (int l = max_level_; l > level; --l) {
    bool improved = true;
    while (improved) {
      improved = false;
      const auto& nbrs = nodes_[current].neighbors;
      if (l >= static_cast<int>(nbrs.size())) break;
      double best = Dist(vector, current);
      for (SlotId nbr : nbrs[static_cast<size_t>(l)]) {
        const double d = Dist(vector, nbr);
        if (d < best) {
          best = d;
          current = nbr;
          improved = true;
        }
      }
    }
  }

  // Connect on each level from min(level, max_level_) down to 0.
  for (int l = std::min(level, max_level_); l >= 0; --l) {
    auto candidates = SearchLayer(vector, current, options_.ef_construction, l);
    if (!candidates.empty()) current = candidates.front().slot;
    const auto neighbors =
        SelectNeighbors(vector, candidates, options_.M);
    auto& my_links = nodes_[slot].neighbors[static_cast<size_t>(l)];
    my_links = neighbors;
    // Add reverse edges, shrinking neighbor lists that overflow.
    for (SlotId nbr : neighbors) {
      auto& links = nodes_[nbr].neighbors[static_cast<size_t>(l)];
      links.push_back(slot);
      const size_t cap = MaxNeighbors(l);
      if (links.size() > cap) {
        std::vector<Candidate> cands;
        cands.reserve(links.size());
        for (SlotId s : links) {
          cands.push_back(Candidate{Distance(metric_, vectors_[nbr],
                                             vectors_[s]),
                                    s});
        }
        links = SelectNeighbors(vectors_[nbr], std::move(cands), cap);
      }
    }
  }

  if (level > max_level_) {
    max_level_ = level;
    entry_point_ = slot;
  }
  return slot;
}

Status HnswIndex::Remove(SlotId slot) {
  if (slot >= nodes_.size()) {
    return Status::NotFound("slot " + std::to_string(slot) + " out of range");
  }
  if (!nodes_[slot].removed) {
    nodes_[slot].removed = true;
    --live_count_;
  }
  return Status::OK();
}

StatusOr<std::vector<IndexHit>> HnswIndex::Search(const Vector& query,
                                                  size_t k) const {
  return SearchWithEf(query, k, options_.ef_search);
}

StatusOr<std::vector<IndexHit>> HnswIndex::SearchWithEf(const Vector& query,
                                                        size_t k,
                                                        size_t ef_search) const {
  if (query.size() != dimension_) {
    return Status::InvalidArgument("query dimension mismatch");
  }
  std::vector<IndexHit> hits;
  if (vectors_.empty() || live_count_ == 0 || k == 0) return hits;

  SlotId current = entry_point_;
  for (int l = max_level_; l > 0; --l) {
    bool improved = true;
    while (improved) {
      improved = false;
      const auto& nbrs = nodes_[current].neighbors;
      if (l >= static_cast<int>(nbrs.size())) break;
      double best = Dist(query, current);
      for (SlotId nbr : nbrs[static_cast<size_t>(l)]) {
        const double d = Dist(query, nbr);
        if (d < best) {
          best = d;
          current = nbr;
          improved = true;
        }
      }
    }
  }

  // Over-fetch when tombstones exist so k live results survive filtering.
  const size_t tombstones = vectors_.size() - live_count_;
  const size_t ef = std::max(ef_search, k) + tombstones;
  const auto candidates = SearchLayer(query, current, ef, /*level=*/0);
  hits.reserve(std::min(k, candidates.size()));
  for (const Candidate& c : candidates) {
    if (nodes_[c.slot].removed) continue;
    hits.push_back(IndexHit{c.slot, c.distance});
    if (hits.size() >= k) break;
  }
  return hits;
}

const Vector* HnswIndex::GetVector(SlotId slot) const {
  if (slot >= vectors_.size() || nodes_[slot].removed) return nullptr;
  return &vectors_[slot];
}

}  // namespace llmms::vectordb
