#ifndef LLMMS_VECTORDB_DURABLE_COLLECTION_H_
#define LLMMS_VECTORDB_DURABLE_COLLECTION_H_

#include <memory>
#include <string>
#include <vector>

#include "llmms/common/fs.h"
#include "llmms/vectordb/collection.h"
#include "llmms/vectordb/wal.h"

namespace llmms::vectordb {

// A Collection whose mutations are journaled to a write-ahead log before
// they are applied, so the in-memory state is rebuilt from disk on open —
// the durability story of the storage layer (§3.3) at record granularity
// (whole-database snapshots via VectorDatabase::Save complement it).
//
// Open() replays any existing log (including torn tails from a crash) into
// a fresh Collection, then appends subsequent mutations to the same log.
// Compact() rewrites the log to the live record set. Both rewrite paths go
// through the full barrier sequence (write temp, fsync, rename, fsync the
// parent directory) so a crash at any point leaves either the old or the
// new log intact — never a mixture.
class DurableCollection {
 public:
  struct OpenStats {
    size_t replayed_upserts = 0;
    size_t replayed_deletes = 0;
    bool recovered_torn_tail = false;
    bool sequence_break = false;
  };

  // Opens (or creates) the durable collection journaled at `wal_path`.
  // All I/O goes through `fs` (FileSystem::Default() when null), and
  // `wal_options` sets the append sync policy (see WriteAheadLog).
  static StatusOr<std::unique_ptr<DurableCollection>> Open(
      const std::string& name, const Collection::Options& options,
      const std::string& wal_path, OpenStats* stats = nullptr,
      FileSystem* fs = nullptr,
      const WriteAheadLog::Options& wal_options = {});

  // Journal-then-apply mutations. Fail with FailedPrecondition when the log
  // is unavailable (a failed compaction swap — see Compact()).
  Status Upsert(VectorRecord record);
  Status Delete(const std::string& id);

  // Explicit durability barrier: fsyncs the journal (for callers running
  // sync-policy kNone/kGroupCommit that need a batch on disk now).
  Status Sync();

  // Reads pass through to the in-memory collection.
  StatusOr<std::vector<QueryResult>> Query(
      const Vector& query, size_t k, const MetadataFilter& filter = {}) const {
    return collection_->Query(query, k, filter);
  }
  StatusOr<VectorRecord> Get(const std::string& id) const {
    return collection_->Get(id);
  }
  size_t size() const { return collection_->size(); }

  // Rewrites the log so it contains exactly the live records (drops
  // superseded upserts and applied deletes). On failure before the swap the
  // old log and handle remain fully usable; only if the swap itself
  // half-fails (renamed but not reopenable) does the collection enter a
  // journal-less state where mutations fail with FailedPrecondition.
  Status Compact();

  const std::string& wal_path() const { return wal_path_; }
  Collection* collection() { return collection_.get(); }
  const Collection* collection() const { return collection_.get(); }

 private:
  DurableCollection(FileSystem* fs, std::unique_ptr<Collection> collection,
                    std::unique_ptr<WriteAheadLog> wal, std::string wal_path,
                    Collection::Options options,
                    WriteAheadLog::Options wal_options, std::string name);

  FileSystem* fs_;
  std::unique_ptr<Collection> collection_;
  std::unique_ptr<WriteAheadLog> wal_;
  std::string wal_path_;
  Collection::Options options_;
  WriteAheadLog::Options wal_options_;
  std::string name_;
};

// N DurableCollection shards under one directory, tied together by a
// crash-safe manifest: `dir/MANIFEST` (written with AtomicWriteFile's
// tmp + fsync + rename + fsync-dir barrier) maps each shard index to its
// generation-numbered WAL file (`shard-<i>.g<G>.wal`). Records are placed
// with the same FNV-1a hash ShardedCollection uses, so the durable and
// in-memory sharded layouts agree.
//
// Checkpoint() compacts every shard into a new file generation, fsyncs the
// new files and the directory, then atomically swaps the manifest — the
// single commit point. A crash anywhere leaves either the old manifest
// (naming the old, intact logs) or the new one (naming the new, fully
// synced logs); files of the losing generation are orphans, swept on the
// next Open(). Mutations and Checkpoint() must be externally serialized
// (one writer), matching the single-writer-per-shard contract.
class ShardedDurableCollection {
 public:
  struct Options {
    Collection::Options collection;
    size_t num_shards = 4;
    WriteAheadLog::Options wal;
  };

  struct OpenStats {
    size_t num_shards = 0;
    uint64_t generation = 0;
    size_t replayed_upserts = 0;
    size_t replayed_deletes = 0;
    size_t torn_tails = 0;
    size_t sequence_breaks = 0;
    size_t orphan_files_removed = 0;
  };

  // Opens (or creates) the sharded collection rooted at directory `dir`
  // (which must exist). An existing manifest wins over `options.num_shards`
  // — shard count is fixed at creation. Dimension/metric must match the
  // manifest or Open fails with FailedPrecondition.
  static StatusOr<std::unique_ptr<ShardedDurableCollection>> Open(
      const std::string& name, const std::string& dir, const Options& options,
      OpenStats* stats = nullptr, FileSystem* fs = nullptr);

  // Journal-then-apply on the owning shard (FailedPrecondition when that
  // shard lost its journal to a half-failed swap).
  Status Upsert(VectorRecord record);
  Status Delete(const std::string& id);

  // Fsyncs every shard's journal.
  Status Sync();

  // Reads fan out / dispatch to the in-memory shard collections; Query
  // merges per-shard top-k deterministically (see MergeShardResults).
  StatusOr<std::vector<QueryResult>> Query(
      const Vector& query, size_t k, const MetadataFilter& filter = {}) const;
  StatusOr<VectorRecord> Get(const std::string& id) const;
  bool Contains(const std::string& id) const;
  std::vector<std::string> Ids() const;
  size_t size() const;

  // Compacts every shard into generation G+1 and commits it with an atomic
  // manifest swap, then removes the old generation's files (best effort —
  // leftovers are swept at the next Open). See the class comment for the
  // crash story.
  Status Checkpoint();

  uint64_t generation() const { return generation_; }
  size_t num_shards() const { return shards_.size(); }
  DurableCollection* shard(size_t i) { return shards_[i].get(); }
  const std::string& dir() const { return dir_; }

  static constexpr const char kManifestName[] = "MANIFEST";

 private:
  ShardedDurableCollection(FileSystem* fs, std::string name, std::string dir,
                           Options options, uint64_t generation,
                           std::vector<std::string> wal_names,
                           std::vector<std::unique_ptr<DurableCollection>> shards);

  Status WriteManifest(const std::vector<std::string>& wal_names,
                       uint64_t generation) const;

  FileSystem* fs_;
  std::string name_;
  std::string dir_;
  Options options_;
  uint64_t generation_;
  // WAL file name (relative to dir_) per shard index.
  std::vector<std::string> wal_names_;
  std::vector<std::unique_ptr<DurableCollection>> shards_;
};

}  // namespace llmms::vectordb

#endif  // LLMMS_VECTORDB_DURABLE_COLLECTION_H_
