#ifndef LLMMS_VECTORDB_DURABLE_COLLECTION_H_
#define LLMMS_VECTORDB_DURABLE_COLLECTION_H_

#include <memory>
#include <string>

#include "llmms/common/fs.h"
#include "llmms/vectordb/collection.h"
#include "llmms/vectordb/wal.h"

namespace llmms::vectordb {

// A Collection whose mutations are journaled to a write-ahead log before
// they are applied, so the in-memory state is rebuilt from disk on open —
// the durability story of the storage layer (§3.3) at record granularity
// (whole-database snapshots via VectorDatabase::Save complement it).
//
// Open() replays any existing log (including torn tails from a crash) into
// a fresh Collection, then appends subsequent mutations to the same log.
// Compact() rewrites the log to the live record set. Both rewrite paths go
// through the full barrier sequence (write temp, fsync, rename, fsync the
// parent directory) so a crash at any point leaves either the old or the
// new log intact — never a mixture.
class DurableCollection {
 public:
  struct OpenStats {
    size_t replayed_upserts = 0;
    size_t replayed_deletes = 0;
    bool recovered_torn_tail = false;
    bool sequence_break = false;
  };

  // Opens (or creates) the durable collection journaled at `wal_path`.
  // All I/O goes through `fs` (FileSystem::Default() when null), and
  // `wal_options` sets the append sync policy (see WriteAheadLog).
  static StatusOr<std::unique_ptr<DurableCollection>> Open(
      const std::string& name, const Collection::Options& options,
      const std::string& wal_path, OpenStats* stats = nullptr,
      FileSystem* fs = nullptr,
      const WriteAheadLog::Options& wal_options = {});

  // Journal-then-apply mutations. Fail with FailedPrecondition when the log
  // is unavailable (a failed compaction swap — see Compact()).
  Status Upsert(VectorRecord record);
  Status Delete(const std::string& id);

  // Explicit durability barrier: fsyncs the journal (for callers running
  // sync-policy kNone/kGroupCommit that need a batch on disk now).
  Status Sync();

  // Reads pass through to the in-memory collection.
  StatusOr<std::vector<QueryResult>> Query(
      const Vector& query, size_t k, const MetadataFilter& filter = {}) const {
    return collection_->Query(query, k, filter);
  }
  StatusOr<VectorRecord> Get(const std::string& id) const {
    return collection_->Get(id);
  }
  size_t size() const { return collection_->size(); }

  // Rewrites the log so it contains exactly the live records (drops
  // superseded upserts and applied deletes). On failure before the swap the
  // old log and handle remain fully usable; only if the swap itself
  // half-fails (renamed but not reopenable) does the collection enter a
  // journal-less state where mutations fail with FailedPrecondition.
  Status Compact();

  const std::string& wal_path() const { return wal_path_; }
  Collection* collection() { return collection_.get(); }

 private:
  DurableCollection(FileSystem* fs, std::unique_ptr<Collection> collection,
                    std::unique_ptr<WriteAheadLog> wal, std::string wal_path,
                    Collection::Options options,
                    WriteAheadLog::Options wal_options, std::string name);

  FileSystem* fs_;
  std::unique_ptr<Collection> collection_;
  std::unique_ptr<WriteAheadLog> wal_;
  std::string wal_path_;
  Collection::Options options_;
  WriteAheadLog::Options wal_options_;
  std::string name_;
};

}  // namespace llmms::vectordb

#endif  // LLMMS_VECTORDB_DURABLE_COLLECTION_H_
