#include "llmms/vectordb/sharded_collection.h"

#include <algorithm>
#include <future>
#include <utility>

#include "llmms/common/thread_pool.h"

namespace llmms::vectordb {
namespace {

// (score desc, id asc): the total order Collection::Query returns in.
bool BetterResult(const QueryResult& a, const QueryResult& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.id < b.id;
}

}  // namespace

ShardedCollection::ShardedCollection(std::string name, const Options& options)
    : name_(std::move(name)), options_(options) {
  const size_t n = std::max<size_t>(1, options_.num_shards);
  options_.num_shards = n;
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Collection>(
        name_ + "/shard-" + std::to_string(i), options_.collection));
  }
}

size_t ShardedCollection::ShardFor(const std::string& id, size_t num_shards) {
  if (num_shards <= 1) return 0;
  uint64_t h = 1469598103934665603ULL;  // FNV-1a 64-bit offset basis
  for (const char c : id) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return static_cast<size_t>(h % num_shards);
}

Status ShardedCollection::Upsert(VectorRecord record) {
  return shards_[ShardFor(record.id, shards_.size())]->Upsert(
      std::move(record));
}

Status ShardedCollection::UpsertBatch(std::vector<VectorRecord> records) {
  for (auto& r : records) {
    LLMMS_RETURN_NOT_OK(Upsert(std::move(r)));
  }
  return Status::OK();
}

Status ShardedCollection::Delete(const std::string& id) {
  return shards_[ShardFor(id, shards_.size())]->Delete(id);
}

StatusOr<VectorRecord> ShardedCollection::Get(const std::string& id) const {
  return shards_[ShardFor(id, shards_.size())]->Get(id);
}

bool ShardedCollection::Contains(const std::string& id) const {
  return shards_[ShardFor(id, shards_.size())]->Contains(id);
}

StatusOr<std::vector<QueryResult>> ShardedCollection::Query(
    const Vector& query, size_t k, const MetadataFilter& filter) const {
  if (shards_.size() == 1) {
    // Opt-out fast path: one shard is exactly the unsharded collection.
    return shards_[0]->Query(query, k, filter);
  }
  std::vector<std::vector<QueryResult>> per_shard(shards_.size());
  if (options_.pool != nullptr) {
    std::vector<std::future<StatusOr<std::vector<QueryResult>>>> futures;
    futures.reserve(shards_.size());
    for (size_t i = 0; i < shards_.size(); ++i) {
      Collection* shard = shards_[i].get();
      futures.push_back(options_.pool->Submit(
          [shard, &query, k, &filter] { return shard->Query(query, k, filter); }));
    }
    // Collect in shard order so error reporting is deterministic.
    for (size_t i = 0; i < futures.size(); ++i) {
      LLMMS_ASSIGN_OR_RETURN(per_shard[i], futures[i].get());
    }
  } else {
    for (size_t i = 0; i < shards_.size(); ++i) {
      LLMMS_ASSIGN_OR_RETURN(per_shard[i], shards_[i]->Query(query, k, filter));
    }
  }
  return MergeShardResults(std::move(per_shard), k);
}

std::vector<QueryResult> MergeShardResults(
    std::vector<std::vector<QueryResult>> per_shard, size_t k) {
  // K-way heap merge. Each input list is sorted best-first, so a heap over
  // the list heads yields the global order; ids are unique across shards
  // (hash partition), making (score desc, id asc) a total order and the
  // merge deterministic regardless of shard completion order.
  struct Head {
    size_t shard;
    size_t pos;
  };
  auto worse = [&per_shard](const Head& a, const Head& b) {
    return BetterResult(per_shard[b.shard][b.pos], per_shard[a.shard][a.pos]);
  };
  std::vector<Head> heap;
  heap.reserve(per_shard.size());
  for (size_t s = 0; s < per_shard.size(); ++s) {
    if (!per_shard[s].empty()) heap.push_back(Head{s, 0});
  }
  std::make_heap(heap.begin(), heap.end(), worse);

  std::vector<QueryResult> out;
  out.reserve(std::min(k, heap.size() * 4));
  while (!heap.empty() && out.size() < k) {
    std::pop_heap(heap.begin(), heap.end(), worse);
    Head head = heap.back();
    heap.pop_back();
    out.push_back(std::move(per_shard[head.shard][head.pos]));
    if (head.pos + 1 < per_shard[head.shard].size()) {
      heap.push_back(Head{head.shard, head.pos + 1});
      std::push_heap(heap.begin(), heap.end(), worse);
    }
  }
  return out;
}

std::vector<std::string> ShardedCollection::Ids() const {
  std::vector<std::string> ids;
  for (const auto& shard : shards_) {
    auto shard_ids = shard->Ids();
    ids.insert(ids.end(), std::make_move_iterator(shard_ids.begin()),
               std::make_move_iterator(shard_ids.end()));
  }
  return ids;
}

size_t ShardedCollection::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->size();
  return total;
}

std::vector<ShardedCollection::ShardStats> ShardedCollection::Stats() const {
  std::vector<ShardStats> stats;
  stats.reserve(shards_.size());
  for (const auto& shard : shards_) {
    ShardStats s;
    s.records = shard->size();
    s.queries = shard->query_count();
    s.vector_bytes = shard->approx_vector_bytes();
    s.quantized = shard->quantized();
    stats.push_back(s);
  }
  return stats;
}

void ShardedCollection::set_quantization_overfetch(size_t overfetch) {
  for (const auto& shard : shards_) {
    shard->set_quantization_overfetch(overfetch);
  }
}

}  // namespace llmms::vectordb
