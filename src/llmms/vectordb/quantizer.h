#ifndef LLMMS_VECTORDB_QUANTIZER_H_
#define LLMMS_VECTORDB_QUANTIZER_H_

#include <cstdint>
#include <vector>

#include "llmms/common/result.h"
#include "llmms/common/status.h"
#include "llmms/vectordb/index.h"
#include "llmms/vectordb/types.h"

namespace llmms::vectordb {

// Per-dimension symmetric int8 scalar quantizer — the standard 4x memory
// reduction for embedding storage (FAISS's SQ8). Trained on a sample to fix
// each dimension's [min, max] range; encode clamps and buckets, decode
// returns bucket midpoints.
class ScalarQuantizer {
 public:
  // Fits per-dimension ranges. All vectors must share one dimension;
  // InvalidArgument otherwise or when `sample` is empty.
  Status Train(const std::vector<Vector>& sample);

  bool trained() const { return !min_.empty(); }
  size_t dimension() const { return min_.size(); }

  // Encodes to one byte per dimension. Preconditions: trained(), matching
  // dimension.
  StatusOr<std::vector<uint8_t>> Encode(const Vector& vector) const;

  // Decodes codes back to approximate floats.
  StatusOr<Vector> Decode(const std::vector<uint8_t>& codes) const;

  // Max absolute reconstruction error for dimension `d` (half a bucket).
  double MaxErrorFor(size_t d) const;

  // Decoded value of one code in one dimension (the scalar core of Decode);
  // preconditions: trained(), d < dimension().
  float DecodeDim(size_t d, uint8_t code) const {
    return min_[d] + static_cast<float>(code) * step_[d];
  }

  // Per-dimension affine parameters (decode(c)_d = min[d] + c * step[d]);
  // the quantized scan builds its query-side coefficients from these.
  const std::vector<float>& mins() const { return min_; }
  const std::vector<float>& steps() const { return step_; }

 private:
  std::vector<float> min_;
  std::vector<float> step_;  // bucket width per dimension
};

// A flat (exact-scan) index over int8-quantized vectors: 4x less memory
// than FlatIndex at a small recall cost. The scan computes each metric
// directly on the stored codes via an affine decomposition of the decode
// (per-dimension coefficients precomputed once per query), so it reads one
// byte per dimension instead of four and never materializes a decoded
// vector — this is where the two-stage path's bandwidth win comes from.
// GetVector returns the dequantized approximation.
class QuantizedFlatIndex final : public VectorIndex {
 public:
  // The quantizer must already be trained; it is copied in.
  QuantizedFlatIndex(const ScalarQuantizer& quantizer, DistanceMetric metric);

  StatusOr<SlotId> Add(const Vector& vector) override;
  Status Remove(SlotId slot) override;
  StatusOr<std::vector<IndexHit>> Search(const Vector& query,
                                         size_t k) const override;
  size_t size() const override { return live_count_; }
  size_t dimension() const override { return quantizer_.dimension(); }
  DistanceMetric metric() const override { return metric_; }
  const Vector* GetVector(SlotId slot) const override;

  // Bytes used by the stored codes (excluding bookkeeping).
  size_t code_bytes() const { return codes_.size(); }

 private:
  ScalarQuantizer quantizer_;
  DistanceMetric metric_;
  std::vector<uint8_t> codes_;  // dimension() bytes per slot, contiguous
  std::vector<bool> removed_;
  // Inverse decoded L2 norm per slot (0 for zero vectors), maintained at
  // Add time so the cosine scan multiplies instead of dividing per slot.
  std::vector<float> inv_norms_;
  size_t live_count_ = 0;
};

}  // namespace llmms::vectordb

#endif  // LLMMS_VECTORDB_QUANTIZER_H_
