#include "llmms/vectordb/quantizer.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "llmms/vectordb/distance.h"

namespace llmms::vectordb {

Status ScalarQuantizer::Train(const std::vector<Vector>& sample) {
  if (sample.empty()) {
    return Status::InvalidArgument("quantizer needs a non-empty sample");
  }
  const size_t dim = sample[0].size();
  if (dim == 0) {
    return Status::InvalidArgument("vectors must have dimension > 0");
  }
  std::vector<float> lo(dim, std::numeric_limits<float>::max());
  std::vector<float> hi(dim, std::numeric_limits<float>::lowest());
  for (const auto& v : sample) {
    if (v.size() != dim) {
      return Status::InvalidArgument("sample vectors differ in dimension");
    }
    for (size_t d = 0; d < dim; ++d) {
      lo[d] = std::min(lo[d], v[d]);
      hi[d] = std::max(hi[d], v[d]);
    }
  }
  min_ = std::move(lo);
  step_.resize(dim);
  for (size_t d = 0; d < dim; ++d) {
    const float range = hi[d] - min_[d];
    // Degenerate dimensions quantize everything to one bucket.
    step_[d] = range > 0.0f ? range / 255.0f : 1.0f;
  }
  return Status::OK();
}

StatusOr<std::vector<uint8_t>> ScalarQuantizer::Encode(
    const Vector& vector) const {
  if (!trained()) {
    return Status::FailedPrecondition("quantizer is not trained");
  }
  if (vector.size() != dimension()) {
    return Status::InvalidArgument("vector dimension mismatch");
  }
  std::vector<uint8_t> codes(vector.size());
  for (size_t d = 0; d < vector.size(); ++d) {
    const float normalized = (vector[d] - min_[d]) / step_[d];
    const float clamped = std::clamp(normalized, 0.0f, 255.0f);
    codes[d] = static_cast<uint8_t>(std::lround(clamped));
  }
  return codes;
}

StatusOr<Vector> ScalarQuantizer::Decode(
    const std::vector<uint8_t>& codes) const {
  if (!trained()) {
    return Status::FailedPrecondition("quantizer is not trained");
  }
  if (codes.size() != dimension()) {
    return Status::InvalidArgument("code length mismatch");
  }
  Vector out(codes.size());
  for (size_t d = 0; d < codes.size(); ++d) {
    out[d] = min_[d] + static_cast<float>(codes[d]) * step_[d];
  }
  return out;
}

double ScalarQuantizer::MaxErrorFor(size_t d) const {
  if (d >= step_.size()) return 0.0;
  return step_[d] / 2.0;  // round-to-nearest leaves at most half a bucket
}

QuantizedFlatIndex::QuantizedFlatIndex(const ScalarQuantizer& quantizer,
                                       DistanceMetric metric)
    : quantizer_(quantizer), metric_(metric) {}

StatusOr<SlotId> QuantizedFlatIndex::Add(const Vector& vector) {
  LLMMS_ASSIGN_OR_RETURN(auto codes, quantizer_.Encode(vector));
  double norm2 = 0.0;
  for (size_t d = 0; d < codes.size(); ++d) {
    // Norm of the decoded vector, not the input: the scan scores against
    // decoded values and must normalize by the same thing.
    const double x = quantizer_.DecodeDim(d, codes[d]);
    norm2 += x * x;
  }
  codes_.insert(codes_.end(), codes.begin(), codes.end());
  removed_.push_back(false);
  // Inverse norm so the cosine scan multiplies instead of dividing per
  // slot; 0 flags a zero vector (scored as maximally distant, like the
  // float path's denom == 0 case).
  inv_norms_.push_back(
      norm2 > 0.0 ? static_cast<float>(1.0 / std::sqrt(norm2)) : 0.0f);
  ++live_count_;
  return static_cast<SlotId>(removed_.size() - 1);
}

Status QuantizedFlatIndex::Remove(SlotId slot) {
  if (slot >= removed_.size()) {
    return Status::NotFound("slot " + std::to_string(slot) + " out of range");
  }
  if (!removed_[slot]) {
    removed_[slot] = true;
    --live_count_;
  }
  return Status::OK();
}

namespace {

// "Better hit" under the index tie order (distance asc, slot asc). Used as
// the `less` of a max-heap so the worst kept hit sits on top.
inline bool BetterHit(const IndexHit& a, const IndexHit& b) {
  if (a.distance != b.distance) return a.distance < b.distance;
  return a.slot < b.slot;
}

// dot(w, codes) with eight independent accumulators: a single float
// accumulator serializes the scan on FMA latency (strict FP ordering also
// blocks auto-vectorization of the reduction), and this loop is the whole
// cost of the candidate stage at 1M vectors.
inline float DotCodes(const float* w, const uint8_t* c, size_t dim) {
  float a0 = 0.0f, a1 = 0.0f, a2 = 0.0f, a3 = 0.0f;
  float a4 = 0.0f, a5 = 0.0f, a6 = 0.0f, a7 = 0.0f;
  size_t d = 0;
  for (; d + 8 <= dim; d += 8) {
    a0 += w[d] * static_cast<float>(c[d]);
    a1 += w[d + 1] * static_cast<float>(c[d + 1]);
    a2 += w[d + 2] * static_cast<float>(c[d + 2]);
    a3 += w[d + 3] * static_cast<float>(c[d + 3]);
    a4 += w[d + 4] * static_cast<float>(c[d + 4]);
    a5 += w[d + 5] * static_cast<float>(c[d + 5]);
    a6 += w[d + 6] * static_cast<float>(c[d + 6]);
    a7 += w[d + 7] * static_cast<float>(c[d + 7]);
  }
  float acc = ((a0 + a1) + (a2 + a3)) + ((a4 + a5) + (a6 + a7));
  for (; d < dim; ++d) acc += w[d] * static_cast<float>(c[d]);
  return acc;
}

// L2 variant: sum of (w_d + s_d * c_d) * c_d, same accumulator structure.
inline float PolyCodes(const float* w, const float* s, const uint8_t* c,
                       size_t dim) {
  float a0 = 0.0f, a1 = 0.0f, a2 = 0.0f, a3 = 0.0f;
  size_t d = 0;
  for (; d + 4 <= dim; d += 4) {
    const float c0 = static_cast<float>(c[d]);
    const float c1 = static_cast<float>(c[d + 1]);
    const float c2 = static_cast<float>(c[d + 2]);
    const float c3 = static_cast<float>(c[d + 3]);
    a0 += (w[d] + s[d] * c0) * c0;
    a1 += (w[d + 1] + s[d + 1] * c1) * c1;
    a2 += (w[d + 2] + s[d + 2] * c2) * c2;
    a3 += (w[d + 3] + s[d + 3] * c3) * c3;
  }
  float acc = (a0 + a1) + (a2 + a3);
  for (; d < dim; ++d) {
    const float cf = static_cast<float>(c[d]);
    acc += (w[d] + s[d] * cf) * cf;
  }
  return acc;
}

}  // namespace

StatusOr<std::vector<IndexHit>> QuantizedFlatIndex::Search(const Vector& query,
                                                           size_t k) const {
  if (query.size() != dimension()) {
    return Status::InvalidArgument("query dimension mismatch");
  }
  const size_t dim = dimension();
  const size_t slots = removed_.size();
  const size_t limit = std::min(k, live_count_);
  std::vector<IndexHit> heap;
  if (limit == 0) return heap;
  heap.reserve(limit + 1);

  // With decode(c)_d = min_d + c_d * step_d every metric reduces to a
  // constant plus a per-dimension polynomial in the raw code, so the scan
  // touches only the int8 codes — a quarter of the float scan's bytes.
  // Accumulation is float: the decoded values are already lossy and the
  // exact re-rank upstream absorbs the rounding.
  const std::vector<float>& mins = quantizer_.mins();
  const std::vector<float>& steps = quantizer_.steps();
  std::vector<float> w(dim);   // linear coefficient per dimension
  std::vector<float> s2(dim);  // quadratic coefficient (L2 only)
  double constant = 0.0;
  double query_norm2 = 0.0;
  if (metric_ == DistanceMetric::kL2) {
    for (size_t d = 0; d < dim; ++d) {
      const float a = query[d] - mins[d];
      constant += static_cast<double>(a) * a;
      w[d] = -2.0f * a * steps[d];
      s2[d] = steps[d] * steps[d];
    }
  } else {
    // kCosine / kInnerProduct both need dot(query, decoded).
    for (size_t d = 0; d < dim; ++d) {
      constant += static_cast<double>(query[d]) * mins[d];
      w[d] = query[d] * steps[d];
      query_norm2 += static_cast<double>(query[d]) * query[d];
    }
  }
  const double query_norm = std::sqrt(query_norm2);

  auto push = [&](SlotId slot, double distance) {
    const IndexHit hit{slot, distance};
    if (heap.size() < limit) {
      heap.push_back(hit);
      std::push_heap(heap.begin(), heap.end(), BetterHit);
    } else if (BetterHit(hit, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), BetterHit);
      heap.back() = hit;
      std::push_heap(heap.begin(), heap.end(), BetterHit);
    }
  };

  const uint8_t* codes = codes_.data();
  switch (metric_) {
    case DistanceMetric::kL2: {
      const float* wp = w.data();
      const float* sp = s2.data();
      for (size_t slot = 0; slot < slots; ++slot) {
        if (removed_[slot]) continue;
        const float acc = PolyCodes(wp, sp, codes + slot * dim, dim);
        push(static_cast<SlotId>(slot), constant + acc);
      }
      break;
    }
    case DistanceMetric::kInnerProduct: {
      const float* wp = w.data();
      for (size_t slot = 0; slot < slots; ++slot) {
        if (removed_[slot]) continue;
        const float acc = DotCodes(wp, codes + slot * dim, dim);
        push(static_cast<SlotId>(slot), -(constant + acc));
      }
      break;
    }
    case DistanceMetric::kCosine: {
      const float* wp = w.data();
      const double inv_query_norm =
          query_norm > 0.0 ? 1.0 / query_norm : 0.0;
      for (size_t slot = 0; slot < slots; ++slot) {
        if (removed_[slot]) continue;
        const float acc = DotCodes(wp, codes + slot * dim, dim);
        const double distance =
            1.0 - (constant + acc) * inv_query_norm *
                      static_cast<double>(inv_norms_[slot]);
        push(static_cast<SlotId>(slot), distance);
      }
      break;
    }
  }

  std::sort(heap.begin(), heap.end(), BetterHit);
  return heap;
}

const Vector* QuantizedFlatIndex::GetVector(SlotId slot) const {
  if (slot >= removed_.size() || removed_[slot]) return nullptr;
  const size_t dim = dimension();
  // Thread-local scratch: GetVector must be callable under the shared
  // (reader) lock, so per-object mutable state is off the table.
  static thread_local Vector decoded;
  decoded.resize(dim);
  const uint8_t* base = codes_.data() + slot * dim;
  for (size_t d = 0; d < dim; ++d) {
    decoded[d] = quantizer_.DecodeDim(d, base[d]);
  }
  return &decoded;
}

}  // namespace llmms::vectordb
