#include "llmms/vectordb/quantizer.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "llmms/vectordb/distance.h"

namespace llmms::vectordb {

Status ScalarQuantizer::Train(const std::vector<Vector>& sample) {
  if (sample.empty()) {
    return Status::InvalidArgument("quantizer needs a non-empty sample");
  }
  const size_t dim = sample[0].size();
  if (dim == 0) {
    return Status::InvalidArgument("vectors must have dimension > 0");
  }
  std::vector<float> lo(dim, std::numeric_limits<float>::max());
  std::vector<float> hi(dim, std::numeric_limits<float>::lowest());
  for (const auto& v : sample) {
    if (v.size() != dim) {
      return Status::InvalidArgument("sample vectors differ in dimension");
    }
    for (size_t d = 0; d < dim; ++d) {
      lo[d] = std::min(lo[d], v[d]);
      hi[d] = std::max(hi[d], v[d]);
    }
  }
  min_ = std::move(lo);
  step_.resize(dim);
  for (size_t d = 0; d < dim; ++d) {
    const float range = hi[d] - min_[d];
    // Degenerate dimensions quantize everything to one bucket.
    step_[d] = range > 0.0f ? range / 255.0f : 1.0f;
  }
  return Status::OK();
}

StatusOr<std::vector<uint8_t>> ScalarQuantizer::Encode(
    const Vector& vector) const {
  if (!trained()) {
    return Status::FailedPrecondition("quantizer is not trained");
  }
  if (vector.size() != dimension()) {
    return Status::InvalidArgument("vector dimension mismatch");
  }
  std::vector<uint8_t> codes(vector.size());
  for (size_t d = 0; d < vector.size(); ++d) {
    const float normalized = (vector[d] - min_[d]) / step_[d];
    const float clamped = std::clamp(normalized, 0.0f, 255.0f);
    codes[d] = static_cast<uint8_t>(std::lround(clamped));
  }
  return codes;
}

StatusOr<Vector> ScalarQuantizer::Decode(
    const std::vector<uint8_t>& codes) const {
  if (!trained()) {
    return Status::FailedPrecondition("quantizer is not trained");
  }
  if (codes.size() != dimension()) {
    return Status::InvalidArgument("code length mismatch");
  }
  Vector out(codes.size());
  for (size_t d = 0; d < codes.size(); ++d) {
    out[d] = min_[d] + static_cast<float>(codes[d]) * step_[d];
  }
  return out;
}

double ScalarQuantizer::MaxErrorFor(size_t d) const {
  if (d >= step_.size()) return 0.0;
  return step_[d] / 2.0;  // round-to-nearest leaves at most half a bucket
}

QuantizedFlatIndex::QuantizedFlatIndex(const ScalarQuantizer& quantizer,
                                       DistanceMetric metric)
    : quantizer_(quantizer), metric_(metric) {}

StatusOr<SlotId> QuantizedFlatIndex::Add(const Vector& vector) {
  LLMMS_ASSIGN_OR_RETURN(auto codes, quantizer_.Encode(vector));
  codes_.insert(codes_.end(), codes.begin(), codes.end());
  removed_.push_back(false);
  ++live_count_;
  return static_cast<SlotId>(removed_.size() - 1);
}

Status QuantizedFlatIndex::Remove(SlotId slot) {
  if (slot >= removed_.size()) {
    return Status::NotFound("slot " + std::to_string(slot) + " out of range");
  }
  if (!removed_[slot]) {
    removed_[slot] = true;
    --live_count_;
  }
  return Status::OK();
}

StatusOr<std::vector<IndexHit>> QuantizedFlatIndex::Search(const Vector& query,
                                                           size_t k) const {
  if (query.size() != dimension()) {
    return Status::InvalidArgument("query dimension mismatch");
  }
  const size_t dim = dimension();
  std::vector<IndexHit> hits;
  hits.reserve(removed_.size());
  std::vector<uint8_t> codes(dim);
  Vector decoded(dim);
  for (size_t slot = 0; slot < removed_.size(); ++slot) {
    if (removed_[slot]) continue;
    const uint8_t* base = codes_.data() + slot * dim;
    codes.assign(base, base + dim);
    auto vec = quantizer_.Decode(codes);
    if (!vec.ok()) return vec.status();
    hits.push_back(IndexHit{static_cast<SlotId>(slot),
                            Distance(metric_, query, *vec)});
  }
  const size_t limit = std::min(k, hits.size());
  std::partial_sort(hits.begin(), hits.begin() + static_cast<ptrdiff_t>(limit),
                    hits.end(), [](const IndexHit& a, const IndexHit& b) {
                      if (a.distance != b.distance) {
                        return a.distance < b.distance;
                      }
                      return a.slot < b.slot;
                    });
  hits.resize(limit);
  return hits;
}

const Vector* QuantizedFlatIndex::GetVector(SlotId slot) const {
  if (slot >= removed_.size() || removed_[slot]) return nullptr;
  const size_t dim = dimension();
  std::vector<uint8_t> codes(codes_.begin() + slot * dim,
                             codes_.begin() + (slot + 1) * dim);
  auto decoded = quantizer_.Decode(codes);
  if (!decoded.ok()) return nullptr;
  decoded_ = std::move(decoded).value();
  return &decoded_;
}

}  // namespace llmms::vectordb
