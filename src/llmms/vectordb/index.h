#ifndef LLMMS_VECTORDB_INDEX_H_
#define LLMMS_VECTORDB_INDEX_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "llmms/common/result.h"
#include "llmms/common/status.h"
#include "llmms/vectordb/types.h"

namespace llmms::vectordb {

// Internal slot handle assigned by the index on insertion.
using SlotId = uint32_t;

// A search hit at the index level: (slot, distance). Smaller distance =
// closer, for every metric (see Distance()).
struct IndexHit {
  SlotId slot;
  double distance;
};

// Nearest-neighbor index over raw vectors. Implementations: FlatIndex
// (exact, brute force), HnswIndex (approximate graph index, the structure
// Chroma/FAISS use), and QuantizedFlatIndex (int8 scan for the two-stage
// path).
//
// Concurrency contract: const methods (Search, GetVector, size) may run
// concurrently with each other but not with Add/Remove. Collection enforces
// this with a shared/exclusive lock — readers search in parallel under the
// shared lock, the single writer mutates under the exclusive one — so
// implementations must keep their const methods free of hidden shared
// mutable state.
class VectorIndex {
 public:
  virtual ~VectorIndex() = default;

  // Inserts a vector and returns its slot. Fails on dimension mismatch.
  virtual StatusOr<SlotId> Add(const Vector& vector) = 0;

  // Tombstones a slot; it no longer appears in search results.
  virtual Status Remove(SlotId slot) = 0;

  // Returns up to k nearest live slots to `query`, closest first.
  virtual StatusOr<std::vector<IndexHit>> Search(const Vector& query,
                                                 size_t k) const = 0;

  // Number of live (non-removed) vectors.
  virtual size_t size() const = 0;

  virtual size_t dimension() const = 0;
  virtual DistanceMetric metric() const = 0;

  // Access to the stored vector for a slot (needed for persistence and for
  // re-ranking); returns nullptr for removed/unknown slots.
  virtual const Vector* GetVector(SlotId slot) const = 0;
};

}  // namespace llmms::vectordb

#endif  // LLMMS_VECTORDB_INDEX_H_
