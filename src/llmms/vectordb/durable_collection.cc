#include "llmms/vectordb/durable_collection.h"

#include <cstdio>

namespace llmms::vectordb {

DurableCollection::DurableCollection(std::unique_ptr<Collection> collection,
                                     std::unique_ptr<WriteAheadLog> wal,
                                     std::string wal_path,
                                     Collection::Options options,
                                     std::string name)
    : collection_(std::move(collection)),
      wal_(std::move(wal)),
      wal_path_(std::move(wal_path)),
      options_(options),
      name_(std::move(name)) {}

StatusOr<std::unique_ptr<DurableCollection>> DurableCollection::Open(
    const std::string& name, const Collection::Options& options,
    const std::string& wal_path, OpenStats* stats) {
  auto collection = std::make_unique<Collection>(name, options);
  LLMMS_ASSIGN_OR_RETURN(auto replay,
                         WriteAheadLog::Replay(wal_path, collection.get()));
  if (stats != nullptr) {
    stats->replayed_upserts = replay.upserts;
    stats->replayed_deletes = replay.deletes;
    stats->recovered_torn_tail = replay.torn_tail;
  }
  // A torn tail means the last write crashed mid-record; rewrite the log to
  // the recovered state so the tail garbage cannot confuse later replays.
  if (replay.torn_tail) {
    const std::string tmp = wal_path + ".compact";
    {
      LLMMS_ASSIGN_OR_RETURN(auto fresh, WriteAheadLog::Open(tmp));
      for (const auto& id : collection->Ids()) {
        LLMMS_ASSIGN_OR_RETURN(auto record, collection->Get(id));
        LLMMS_RETURN_NOT_OK(fresh->AppendUpsert(record));
      }
    }
    if (std::rename(tmp.c_str(), wal_path.c_str()) != 0) {
      return Status::IOError("cannot replace torn WAL: " + wal_path);
    }
  }
  LLMMS_ASSIGN_OR_RETURN(auto wal, WriteAheadLog::Open(wal_path));
  return std::unique_ptr<DurableCollection>(
      new DurableCollection(std::move(collection), std::move(wal), wal_path,
                            options, name));
}

Status DurableCollection::Upsert(VectorRecord record) {
  LLMMS_RETURN_NOT_OK(wal_->AppendUpsert(record));
  return collection_->Upsert(std::move(record));
}

Status DurableCollection::Delete(const std::string& id) {
  LLMMS_RETURN_NOT_OK(wal_->AppendDelete(id));
  return collection_->Delete(id);
}

Status DurableCollection::Compact() {
  const std::string tmp = wal_path_ + ".compact";
  {
    std::remove(tmp.c_str());
    LLMMS_ASSIGN_OR_RETURN(auto fresh, WriteAheadLog::Open(tmp));
    for (const auto& id : collection_->Ids()) {
      LLMMS_ASSIGN_OR_RETURN(auto record, collection_->Get(id));
      LLMMS_RETURN_NOT_OK(fresh->AppendUpsert(record));
    }
  }
  wal_.reset();  // close the old handle before replacing the file
  if (std::rename(tmp.c_str(), wal_path_.c_str()) != 0) {
    return Status::IOError("compaction rename failed: " + wal_path_);
  }
  LLMMS_ASSIGN_OR_RETURN(wal_, WriteAheadLog::Open(wal_path_));
  return Status::OK();
}

}  // namespace llmms::vectordb
