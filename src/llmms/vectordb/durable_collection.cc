#include "llmms/vectordb/durable_collection.h"

#include <algorithm>
#include <unordered_set>

#include "llmms/common/json.h"
#include "llmms/vectordb/sharded_collection.h"

namespace llmms::vectordb {

DurableCollection::DurableCollection(FileSystem* fs,
                                     std::unique_ptr<Collection> collection,
                                     std::unique_ptr<WriteAheadLog> wal,
                                     std::string wal_path,
                                     Collection::Options options,
                                     WriteAheadLog::Options wal_options,
                                     std::string name)
    : fs_(fs),
      collection_(std::move(collection)),
      wal_(std::move(wal)),
      wal_path_(std::move(wal_path)),
      options_(options),
      wal_options_(wal_options),
      name_(std::move(name)) {}

StatusOr<std::unique_ptr<DurableCollection>> DurableCollection::Open(
    const std::string& name, const Collection::Options& options,
    const std::string& wal_path, OpenStats* stats, FileSystem* fs,
    const WriteAheadLog::Options& wal_options) {
  if (fs == nullptr) fs = FileSystem::Default();
  auto collection = std::make_unique<Collection>(name, options);
  LLMMS_ASSIGN_OR_RETURN(auto replay,
                         WriteAheadLog::Replay(fs, wal_path, collection.get()));
  if (stats != nullptr) {
    stats->replayed_upserts = replay.upserts;
    stats->replayed_deletes = replay.deletes;
    stats->recovered_torn_tail = replay.torn_tail;
    stats->sequence_break = replay.sequence_break;
  }
  // A torn tail means the last write crashed mid-record; rewrite the log to
  // the recovered state so the tail garbage cannot confuse later replays.
  // (A sequence break is handled the same way: the suffix past the gap is
  // untrustworthy and is dropped with the rewrite.)
  if (replay.torn_tail || replay.sequence_break) {
    const std::string tmp = wal_path + ".compact";
    LLMMS_RETURN_NOT_OK(
        WriteAheadLog::WriteCompacted(fs, tmp, *collection, wal_options));
    LLMMS_RETURN_NOT_OK(fs->Rename(tmp, wal_path));
    LLMMS_RETURN_NOT_OK(fs->SyncDir(DirnameOf(wal_path)));
  }
  LLMMS_ASSIGN_OR_RETURN(auto wal,
                         WriteAheadLog::Open(fs, wal_path, wal_options));
  return std::unique_ptr<DurableCollection>(
      new DurableCollection(fs, std::move(collection), std::move(wal),
                            wal_path, options, wal_options, name));
}

Status DurableCollection::Upsert(VectorRecord record) {
  if (wal_ == nullptr) {
    return Status::FailedPrecondition(
        "journal unavailable after failed compaction swap: " + wal_path_);
  }
  LLMMS_RETURN_NOT_OK(wal_->AppendUpsert(record));
  return collection_->Upsert(std::move(record));
}

Status DurableCollection::Delete(const std::string& id) {
  if (wal_ == nullptr) {
    return Status::FailedPrecondition(
        "journal unavailable after failed compaction swap: " + wal_path_);
  }
  LLMMS_RETURN_NOT_OK(wal_->AppendDelete(id));
  return collection_->Delete(id);
}

Status DurableCollection::Sync() {
  if (wal_ == nullptr) {
    return Status::FailedPrecondition(
        "journal unavailable after failed compaction swap: " + wal_path_);
  }
  return wal_->Sync();
}

Status DurableCollection::Compact() {
  auto& counters = GlobalStorageCounters();
  const std::string tmp = wal_path_ + ".compact";
  Status status =
      WriteAheadLog::WriteCompacted(fs_, tmp, *collection_, wal_options_);
  if (status.ok()) status = fs_->Rename(tmp, wal_path_);
  if (!status.ok()) {
    // Nothing replaced the live log: keep the old handle — it is still
    // appending to the real log, and mutations must keep working.
    counters.compaction_failures.fetch_add(1, std::memory_order_relaxed);
    (void)fs_->Remove(tmp);  // best effort; Open/Compact also clear leftovers
    return status;
  }
  // The rename succeeded, so the old handle now points at an unlinked
  // inode; keeping it would silently journal into the void. Drop it and
  // reopen the new log; if the reopen fails, mutations must fail loudly
  // (FailedPrecondition) instead of dereferencing null.
  wal_.reset();
  const Status dir_sync = fs_->SyncDir(DirnameOf(wal_path_));
  auto reopened = WriteAheadLog::Open(fs_, wal_path_, wal_options_);
  if (!reopened.ok()) {
    counters.compaction_failures.fetch_add(1, std::memory_order_relaxed);
    return reopened.status();
  }
  wal_ = std::move(*reopened);
  if (!dir_sync.ok()) {
    counters.compaction_failures.fetch_add(1, std::memory_order_relaxed);
    return dir_sync;
  }
  counters.compactions.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

// ----------------------------------------------------------------------
// ShardedDurableCollection

namespace {

std::string ShardWalName(size_t shard, uint64_t generation) {
  return "shard-" + std::to_string(shard) + ".g" +
         std::to_string(generation) + ".wal";
}

}  // namespace

constexpr const char ShardedDurableCollection::kManifestName[];

ShardedDurableCollection::ShardedDurableCollection(
    FileSystem* fs, std::string name, std::string dir, Options options,
    uint64_t generation, std::vector<std::string> wal_names,
    std::vector<std::unique_ptr<DurableCollection>> shards)
    : fs_(fs),
      name_(std::move(name)),
      dir_(std::move(dir)),
      options_(std::move(options)),
      generation_(generation),
      wal_names_(std::move(wal_names)),
      shards_(std::move(shards)) {}

Status ShardedDurableCollection::WriteManifest(
    const std::vector<std::string>& wal_names, uint64_t generation) const {
  Json manifest = Json::MakeObject();
  manifest.Set("name", name_);
  manifest.Set("num_shards", wal_names.size());
  manifest.Set("generation", generation);
  manifest.Set("dimension", options_.collection.dimension);
  manifest.Set("metric",
               static_cast<int>(options_.collection.metric));
  Json wals = Json::MakeArray();
  for (const auto& w : wal_names) wals.Append(w);
  manifest.Set("wals", std::move(wals));
  return AtomicWriteFile(fs_, dir_ + "/" + kManifestName, manifest.Dump(2));
}

StatusOr<std::unique_ptr<ShardedDurableCollection>>
ShardedDurableCollection::Open(const std::string& name, const std::string& dir,
                               const Options& options, OpenStats* stats,
                               FileSystem* fs) {
  if (fs == nullptr) fs = FileSystem::Default();
  const std::string manifest_path = dir + "/" + kManifestName;

  size_t num_shards = std::max<size_t>(1, options.num_shards);
  uint64_t generation = 1;
  std::vector<std::string> wal_names;
  bool fresh = true;

  if (fs->Exists(manifest_path)) {
    LLMMS_ASSIGN_OR_RETURN(auto raw, fs->ReadFile(manifest_path));
    // The manifest is written atomically, so unlike a WAL tail a parse
    // failure is real corruption, not a crash artifact.
    auto parsed = Json::Parse(raw);
    if (!parsed.ok()) {
      return Status::IOError("corrupt shard manifest: " + manifest_path);
    }
    const Json& m = *parsed;
    if (!m.is_object() || !m.Contains("wals") || !m["wals"].is_array() ||
        m["wals"].Size() == 0) {
      return Status::IOError("malformed shard manifest: " + manifest_path);
    }
    if (static_cast<size_t>(m["dimension"].AsInt()) !=
            options.collection.dimension ||
        m["metric"].AsInt() != static_cast<int>(options.collection.metric)) {
      return Status::FailedPrecondition(
          "sharded collection at '" + dir +
          "' exists with incompatible options");
    }
    num_shards = m["wals"].Size();
    generation = static_cast<uint64_t>(m["generation"].AsInt(1));
    for (size_t i = 0; i < num_shards; ++i) {
      wal_names.push_back(m["wals"].At(i).AsString());
    }
    fresh = false;
  } else {
    for (size_t i = 0; i < num_shards; ++i) {
      wal_names.push_back(ShardWalName(i, generation));
    }
  }

  Options opened = options;
  opened.num_shards = num_shards;

  std::vector<std::unique_ptr<DurableCollection>> shards;
  shards.reserve(num_shards);
  if (stats != nullptr) {
    stats->num_shards = num_shards;
    stats->generation = generation;
  }
  for (size_t i = 0; i < num_shards; ++i) {
    DurableCollection::OpenStats shard_stats;
    LLMMS_ASSIGN_OR_RETURN(
        auto shard,
        DurableCollection::Open(name + "/shard-" + std::to_string(i),
                                options.collection, dir + "/" + wal_names[i],
                                &shard_stats, fs, options.wal));
    if (stats != nullptr) {
      stats->replayed_upserts += shard_stats.replayed_upserts;
      stats->replayed_deletes += shard_stats.replayed_deletes;
      stats->torn_tails += shard_stats.recovered_torn_tail ? 1 : 0;
      stats->sequence_breaks += shard_stats.sequence_break ? 1 : 0;
    }
    shards.push_back(std::move(shard));
  }

  auto out = std::unique_ptr<ShardedDurableCollection>(
      new ShardedDurableCollection(fs, name, dir, opened, generation,
                                   wal_names, std::move(shards)));

  if (fresh) {
    // Commit the initial shard set. The shard WALs already exist (opening
    // created them); make their directory entries durable before the
    // manifest names them.
    LLMMS_RETURN_NOT_OK(fs->SyncDir(dir));
    LLMMS_RETURN_NOT_OK(out->WriteManifest(wal_names, generation));
  }

  // Sweep orphans: shard files from a generation that lost its manifest
  // race (crash mid-checkpoint) or leftover recovery temporaries. Anything
  // `shard-*` the manifest does not name is dead by construction.
  std::unordered_set<std::string> live(wal_names.begin(), wal_names.end());
  LLMMS_ASSIGN_OR_RETURN(auto entries, fs->List(dir));
  for (const auto& entry : entries) {
    if (entry.rfind("shard-", 0) != 0) continue;
    if (live.count(entry) > 0) continue;
    Status removed = fs->Remove(dir + "/" + entry);
    if (removed.ok() && stats != nullptr) ++stats->orphan_files_removed;
  }

  return out;
}

Status ShardedDurableCollection::Upsert(VectorRecord record) {
  const size_t s = ShardedCollection::ShardFor(record.id, shards_.size());
  if (shards_[s] == nullptr) {
    return Status::FailedPrecondition(
        "shard " + std::to_string(s) + " unavailable after failed checkpoint");
  }
  return shards_[s]->Upsert(std::move(record));
}

Status ShardedDurableCollection::Delete(const std::string& id) {
  const size_t s = ShardedCollection::ShardFor(id, shards_.size());
  if (shards_[s] == nullptr) {
    return Status::FailedPrecondition(
        "shard " + std::to_string(s) + " unavailable after failed checkpoint");
  }
  return shards_[s]->Delete(id);
}

Status ShardedDurableCollection::Sync() {
  for (auto& shard : shards_) {
    if (shard == nullptr) {
      return Status::FailedPrecondition(
          "shard unavailable after failed checkpoint");
    }
    LLMMS_RETURN_NOT_OK(shard->Sync());
  }
  return Status::OK();
}

StatusOr<std::vector<QueryResult>> ShardedDurableCollection::Query(
    const Vector& query, size_t k, const MetadataFilter& filter) const {
  std::vector<std::vector<QueryResult>> per_shard(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (shards_[i] == nullptr) continue;
    LLMMS_ASSIGN_OR_RETURN(per_shard[i], shards_[i]->Query(query, k, filter));
  }
  return MergeShardResults(std::move(per_shard), k);
}

StatusOr<VectorRecord> ShardedDurableCollection::Get(
    const std::string& id) const {
  const size_t s = ShardedCollection::ShardFor(id, shards_.size());
  if (shards_[s] == nullptr) {
    return Status::FailedPrecondition(
        "shard " + std::to_string(s) + " unavailable after failed checkpoint");
  }
  return shards_[s]->Get(id);
}

bool ShardedDurableCollection::Contains(const std::string& id) const {
  const size_t s = ShardedCollection::ShardFor(id, shards_.size());
  return shards_[s] != nullptr && shards_[s]->collection()->Contains(id);
}

std::vector<std::string> ShardedDurableCollection::Ids() const {
  std::vector<std::string> ids;
  for (const auto& shard : shards_) {
    if (shard == nullptr) continue;
    auto shard_ids = shard->collection()->Ids();
    ids.insert(ids.end(), std::make_move_iterator(shard_ids.begin()),
               std::make_move_iterator(shard_ids.end()));
  }
  return ids;
}

size_t ShardedDurableCollection::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    if (shard != nullptr) total += shard->size();
  }
  return total;
}

Status ShardedDurableCollection::Checkpoint() {
  auto& counters = GlobalStorageCounters();
  const uint64_t next_gen = generation_ + 1;
  std::vector<std::string> next_names;
  next_names.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    next_names.push_back(ShardWalName(i, next_gen));
  }

  // Phase 1: write every shard's compacted next-generation log, fully
  // synced, while the current generation keeps serving. Failure here is
  // clean — the manifest still names the old files.
  Status status = Status::OK();
  for (size_t i = 0; i < shards_.size() && status.ok(); ++i) {
    if (shards_[i] == nullptr) {
      status = Status::FailedPrecondition(
          "shard " + std::to_string(i) + " unavailable; cannot checkpoint");
      break;
    }
    status = WriteAheadLog::WriteCompacted(fs_, dir_ + "/" + next_names[i],
                                           *shards_[i]->collection(),
                                           options_.wal);
  }
  // The new files' directory entries must be durable before the manifest
  // can name them.
  if (status.ok()) status = fs_->SyncDir(dir_);
  // Phase 2: the commit point — atomically swap the manifest.
  if (status.ok()) status = WriteManifest(next_names, next_gen);
  if (!status.ok()) {
    counters.compaction_failures.fetch_add(1, std::memory_order_relaxed);
    for (const auto& n : next_names) (void)fs_->Remove(dir_ + "/" + n);
    return status;
  }

  // Phase 3: move the shard handles onto the new generation. The old
  // handles point at files no manifest names; journaling into them would
  // lose acknowledged writes, so each shard is dropped before its reopen —
  // a failed reopen leaves that slot null and mutations fail loudly.
  const std::vector<std::string> old_names = std::move(wal_names_);
  wal_names_ = next_names;
  generation_ = next_gen;
  Status reopen_status = Status::OK();
  for (size_t i = 0; i < shards_.size(); ++i) {
    shards_[i].reset();
    auto reopened = DurableCollection::Open(
        name_ + "/shard-" + std::to_string(i), options_.collection,
        dir_ + "/" + wal_names_[i], nullptr, fs_, options_.wal);
    if (!reopened.ok()) {
      if (reopen_status.ok()) reopen_status = reopened.status();
      continue;
    }
    shards_[i] = std::move(*reopened);
  }
  if (!reopen_status.ok()) {
    counters.compaction_failures.fetch_add(1, std::memory_order_relaxed);
    return reopen_status;
  }

  // Phase 4: retire the old generation (best effort — a crash here leaves
  // orphans for the next Open's sweep).
  for (const auto& n : old_names) (void)fs_->Remove(dir_ + "/" + n);
  (void)fs_->SyncDir(dir_);
  counters.compactions.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

}  // namespace llmms::vectordb
