#include "llmms/vectordb/durable_collection.h"

namespace llmms::vectordb {
namespace {

// Writes a fresh, fsynced log at `path` holding exactly the live records of
// `collection`. Removes any stale leftover at `path` first — a previous
// crash mid-rewrite may have left one, and appending to it would resurrect
// records deleted since (the zombie-record bug). The caller completes the
// swap with Rename + SyncDir.
Status WriteFreshLog(FileSystem* fs, const std::string& path,
                     Collection* collection,
                     const WriteAheadLog::Options& wal_options) {
  Status removed = fs->Remove(path);
  if (!removed.ok() && !removed.IsNotFound()) return removed;
  LLMMS_ASSIGN_OR_RETURN(auto fresh,
                         WriteAheadLog::Open(fs, path, wal_options));
  for (const auto& id : collection->Ids()) {
    LLMMS_ASSIGN_OR_RETURN(auto record, collection->Get(id));
    LLMMS_RETURN_NOT_OK(fresh->AppendUpsert(record));
  }
  // The rewrite replaces the whole log; it must be durable before the
  // rename makes it the log, whatever the append-path sync policy is.
  return fresh->Sync();
}

}  // namespace

DurableCollection::DurableCollection(FileSystem* fs,
                                     std::unique_ptr<Collection> collection,
                                     std::unique_ptr<WriteAheadLog> wal,
                                     std::string wal_path,
                                     Collection::Options options,
                                     WriteAheadLog::Options wal_options,
                                     std::string name)
    : fs_(fs),
      collection_(std::move(collection)),
      wal_(std::move(wal)),
      wal_path_(std::move(wal_path)),
      options_(options),
      wal_options_(wal_options),
      name_(std::move(name)) {}

StatusOr<std::unique_ptr<DurableCollection>> DurableCollection::Open(
    const std::string& name, const Collection::Options& options,
    const std::string& wal_path, OpenStats* stats, FileSystem* fs,
    const WriteAheadLog::Options& wal_options) {
  if (fs == nullptr) fs = FileSystem::Default();
  auto collection = std::make_unique<Collection>(name, options);
  LLMMS_ASSIGN_OR_RETURN(auto replay,
                         WriteAheadLog::Replay(fs, wal_path, collection.get()));
  if (stats != nullptr) {
    stats->replayed_upserts = replay.upserts;
    stats->replayed_deletes = replay.deletes;
    stats->recovered_torn_tail = replay.torn_tail;
    stats->sequence_break = replay.sequence_break;
  }
  // A torn tail means the last write crashed mid-record; rewrite the log to
  // the recovered state so the tail garbage cannot confuse later replays.
  // (A sequence break is handled the same way: the suffix past the gap is
  // untrustworthy and is dropped with the rewrite.)
  if (replay.torn_tail || replay.sequence_break) {
    const std::string tmp = wal_path + ".compact";
    LLMMS_RETURN_NOT_OK(WriteFreshLog(fs, tmp, collection.get(), wal_options));
    LLMMS_RETURN_NOT_OK(fs->Rename(tmp, wal_path));
    LLMMS_RETURN_NOT_OK(fs->SyncDir(DirnameOf(wal_path)));
  }
  LLMMS_ASSIGN_OR_RETURN(auto wal,
                         WriteAheadLog::Open(fs, wal_path, wal_options));
  return std::unique_ptr<DurableCollection>(
      new DurableCollection(fs, std::move(collection), std::move(wal),
                            wal_path, options, wal_options, name));
}

Status DurableCollection::Upsert(VectorRecord record) {
  if (wal_ == nullptr) {
    return Status::FailedPrecondition(
        "journal unavailable after failed compaction swap: " + wal_path_);
  }
  LLMMS_RETURN_NOT_OK(wal_->AppendUpsert(record));
  return collection_->Upsert(std::move(record));
}

Status DurableCollection::Delete(const std::string& id) {
  if (wal_ == nullptr) {
    return Status::FailedPrecondition(
        "journal unavailable after failed compaction swap: " + wal_path_);
  }
  LLMMS_RETURN_NOT_OK(wal_->AppendDelete(id));
  return collection_->Delete(id);
}

Status DurableCollection::Sync() {
  if (wal_ == nullptr) {
    return Status::FailedPrecondition(
        "journal unavailable after failed compaction swap: " + wal_path_);
  }
  return wal_->Sync();
}

Status DurableCollection::Compact() {
  auto& counters = GlobalStorageCounters();
  const std::string tmp = wal_path_ + ".compact";
  Status status = WriteFreshLog(fs_, tmp, collection_.get(), wal_options_);
  if (status.ok()) status = fs_->Rename(tmp, wal_path_);
  if (!status.ok()) {
    // Nothing replaced the live log: keep the old handle — it is still
    // appending to the real log, and mutations must keep working.
    counters.compaction_failures.fetch_add(1, std::memory_order_relaxed);
    (void)fs_->Remove(tmp);  // best effort; Open/Compact also clear leftovers
    return status;
  }
  // The rename succeeded, so the old handle now points at an unlinked
  // inode; keeping it would silently journal into the void. Drop it and
  // reopen the new log; if the reopen fails, mutations must fail loudly
  // (FailedPrecondition) instead of dereferencing null.
  wal_.reset();
  const Status dir_sync = fs_->SyncDir(DirnameOf(wal_path_));
  auto reopened = WriteAheadLog::Open(fs_, wal_path_, wal_options_);
  if (!reopened.ok()) {
    counters.compaction_failures.fetch_add(1, std::memory_order_relaxed);
    return reopened.status();
  }
  wal_ = std::move(*reopened);
  if (!dir_sync.ok()) {
    counters.compaction_failures.fetch_add(1, std::memory_order_relaxed);
    return dir_sync;
  }
  counters.compactions.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

}  // namespace llmms::vectordb
