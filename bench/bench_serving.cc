// Closed-loop serving benchmark: the first recorded end-to-end performance
// baseline for the HTTP front door (DESIGN.md §12). Drives the full stack —
// socket server, admission control, ApiService, SearchEngine, orchestrators,
// synthetic models — with concurrent closed-loop clients at 1x/2x/4x the
// server's capacity (capacity = one in-flight request per worker) and
// records per-multiple latency percentiles, served QPS, and shed rate into
// BENCH_serving.json.
//
// With --batched, a second phase turns on the continuous-batching scheduler
// (DESIGN.md §13) over shared model replicas and sweeps clients-per-replica,
// recording the batched runs, the scheduler's own gauges, and the
// batched-vs-unbatched capacity delta in a `batched` section. The unbatched
// phase always runs first and is unaffected.
//
// Usage: bench_serving [--batched] [output.json]
//   LLMMS_BENCH_QPD       questions per domain for the synthetic dataset
//   LLMMS_BENCH_REQS      requests per client per run (default 25)
//   LLMMS_BENCH_WORKERS   server worker count (default 4)
//   LLMMS_BENCH_REPLICAS  replica slots per model in the batched phase
//                         (default 2)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "llmms/app/http_server.h"
#include "llmms/app/service.h"
#include "llmms/common/json.h"
#include "llmms/llm/batch_scheduler.h"
#include "llmms/core/search_engine.h"
#include "llmms/session/session_store.h"
#include "llmms/vectordb/database.h"

namespace llmms::bench {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

size_t EnvSize(const char* name, size_t fallback) {
  const char* env = std::getenv(name);
  if (env != nullptr) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<size_t>(v);
  }
  return fallback;
}

double PercentileMs(std::vector<double> sorted_seconds, double p) {
  if (sorted_seconds.empty()) return 0.0;
  const size_t index = std::min(
      sorted_seconds.size() - 1,
      static_cast<size_t>(std::ceil(p * sorted_seconds.size())) - 1);
  return sorted_seconds[index] * 1e3;
}

struct RunResult {
  size_t multiple = 0;
  size_t clients = 0;
  size_t requests = 0;
  size_t served = 0;
  size_t shed = 0;
  size_t errors = 0;
  double wall_seconds = 0.0;
  double qps = 0.0;
  double shed_rate = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
};

// One closed-loop run: `clients` threads, each issuing `per_client`
// sequential queries; every admitted (200) response contributes a latency
// sample, every 503 counts as shed.
RunResult RunClosedLoop(int port, const std::vector<llm::QaItem>& dataset,
                        size_t multiple, size_t clients, size_t per_client) {
  RunResult result;
  result.multiple = multiple;
  result.clients = clients;
  result.requests = clients * per_client;

  std::mutex mu;
  std::vector<double> latencies;
  std::atomic<size_t> served{0};
  std::atomic<size_t> shed{0};
  std::atomic<size_t> errors{0};

  const auto start = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c]() {
      std::vector<double> local;
      local.reserve(per_client);
      for (size_t i = 0; i < per_client; ++i) {
        Json body = Json::MakeObject();
        body.Set("session", "bench-" + std::to_string(multiple) + "-" +
                                std::to_string(c));
        body.Set("query",
                 dataset[(c * per_client + i) % dataset.size()].question);
        body.Set("budget", 64);
        body.Set("use_rag", false);
        const auto sent = Clock::now();
        auto response =
            app::HttpFetch("127.0.0.1", port, "POST", "/api/query",
                           body.Dump(), "application/json",
                           /*timeout_seconds=*/60.0);
        const double elapsed = SecondsSince(sent);
        if (response.ok() && response->status == 200) {
          ++served;
          local.push_back(elapsed);
        } else if (response.ok() && response->status == 503) {
          ++shed;
        } else {
          ++errors;
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      latencies.insert(latencies.end(), local.begin(), local.end());
    });
  }
  for (auto& thread : threads) thread.join();
  result.wall_seconds = SecondsSince(start);

  result.served = served.load();
  result.shed = shed.load();
  result.errors = errors.load();
  result.qps = result.wall_seconds > 0.0
                   ? static_cast<double>(result.served) / result.wall_seconds
                   : 0.0;
  result.shed_rate = result.requests > 0
                         ? static_cast<double>(result.shed) /
                               static_cast<double>(result.requests)
                         : 0.0;
  std::sort(latencies.begin(), latencies.end());
  result.p50_ms = PercentileMs(latencies, 0.50);
  result.p95_ms = PercentileMs(latencies, 0.95);
  result.p99_ms = PercentileMs(latencies, 0.99);
  return result;
}

Json ToJson(const RunResult& r) {
  Json row = Json::MakeObject();
  row.Set("load_multiple", r.multiple);
  row.Set("clients", r.clients);
  row.Set("requests", r.requests);
  row.Set("served", r.served);
  row.Set("shed", r.shed);
  row.Set("errors", r.errors);
  row.Set("wall_seconds", r.wall_seconds);
  row.Set("served_qps", r.qps);
  row.Set("shed_rate", r.shed_rate);
  row.Set("p50_ms", r.p50_ms);
  row.Set("p95_ms", r.p95_ms);
  row.Set("p99_ms", r.p99_ms);
  return row;
}

int Main(int argc, char** argv) {
  std::string output = "BENCH_serving.json";
  bool batched = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--batched") {
      batched = true;
    } else {
      output = arg;
    }
  }
  const size_t workers = EnvSize("LLMMS_BENCH_WORKERS", 4);
  const size_t per_client = EnvSize("LLMMS_BENCH_REQS", 25);
  const size_t replicas = EnvSize("LLMMS_BENCH_REPLICAS", 2);

  auto world = MakeBenchWorld(EnvSize("LLMMS_BENCH_QPD", 8));
  auto db = std::make_shared<vectordb::VectorDatabase>();
  auto sessions = std::make_shared<session::SessionStore>();
  core::SearchEngine engine(world.runtime.get(), world.embedder, db,
                            sessions);
  app::ApiService service(&engine);

  app::HttpServerOptions options;
  options.num_workers = workers;
  options.max_queue = workers;  // one queued request per worker
  options.request_timeout_seconds = 60.0;
  options.socket_timeout_seconds = 60.0;
  app::HttpServer server(&service, options);
  if (auto status = server.Start(0); !status.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }

  // Warmup: touch every layer (lazy caches, first-query session setup)
  // before measuring.
  (void)RunClosedLoop(server.port(), world.dataset, 0, workers,
                      std::max<size_t>(2, per_client / 5));

  std::fprintf(stderr,
               "serving bench: %zu workers, queue %zu, %zu reqs/client\n",
               workers, options.max_queue, per_client);
  std::vector<RunResult> runs;
  for (const size_t multiple : {size_t{1}, size_t{2}, size_t{4}}) {
    const size_t clients = multiple * workers;
    RunResult run = RunClosedLoop(server.port(), world.dataset, multiple,
                                  clients, per_client);
    std::fprintf(stderr,
                 "  %zux: %zu clients  served %zu  shed %zu (%.0f%%)  "
                 "qps %.1f  p50 %.1fms  p95 %.1fms  p99 %.1fms\n",
                 multiple, clients, run.served, run.shed,
                 run.shed_rate * 100.0, run.qps, run.p50_ms, run.p95_ms,
                 run.p99_ms);
    runs.push_back(run);
  }
  // Batched phase: the same front door, but every generation started from
  // here on multiplexes the shared replica slots through one
  // llm::BatchScheduler. Sweep clients-per-replica so the row dimension is
  // contention on the replicas themselves, not on the HTTP workers.
  std::vector<RunResult> batched_runs;
  Json scheduler_gauges;
  if (batched) {
    llm::SchedulerConfig scheduler_config;
    scheduler_config.replicas_per_model = replicas;
    world.runtime->EnableScheduler(scheduler_config);
    std::fprintf(stderr, "batched phase: %zu replica slots per model\n",
                 replicas);
    for (const size_t per_replica : {size_t{1}, size_t{2}, size_t{4}}) {
      const size_t clients = per_replica * replicas;
      RunResult run = RunClosedLoop(server.port(), world.dataset, per_replica,
                                    clients, per_client);
      std::fprintf(stderr,
                   "  %zu clients/replica: %zu clients  served %zu  shed %zu "
                   "(%.0f%%)  qps %.1f  p50 %.1fms  p95 %.1fms  p99 %.1fms\n",
                   per_replica, clients, run.served, run.shed,
                   run.shed_rate * 100.0, run.qps, run.p50_ms, run.p95_ms,
                   run.p99_ms);
      batched_runs.push_back(run);
    }
    // The scheduler's own view of the phase, via the same health surface
    // operators scrape.
    scheduler_gauges = service.Handle("/api/health", Json::MakeObject())
                           ["scheduler"];
  }

  const auto& stats = server.stats();
  Json server_counters = stats.ToJson();
  server.Stop();

  Json config = Json::MakeObject();
  config.Set("num_workers", workers);
  config.Set("max_queue", options.max_queue);
  config.Set("requests_per_client", per_client);
  config.Set("dataset_questions", world.dataset.size());
  config.Set("token_budget", 64);
  config.Set("algorithm", "oua");

  Json out = Json::MakeObject();
  out.Set("bench", "serving");
  out.Set("description",
          "closed-loop load against the HTTP front door at 1x/2x/4x "
          "capacity (capacity = num_workers concurrent clients); latency "
          "percentiles are over admitted (200) responses only");
  out.Set("config", std::move(config));
  // Capacity is what the 1x run measured: every worker busy, no shedding.
  out.Set("capacity_qps", runs.front().qps);
  Json rows = Json::MakeArray();
  for (const auto& run : runs) rows.Append(ToJson(run));
  out.Set("runs", std::move(rows));
  out.Set("server_counters", std::move(server_counters));

  if (batched) {
    Json section = Json::MakeObject();
    section.Set("replicas_per_model", replicas);
    section.Set("capacity_qps", batched_runs.front().qps);
    // How batched serving at 1 client/replica compares to the unbatched
    // capacity run: > 1 means continuous batching served strictly more QPS
    // from the same hardware.
    section.Set("capacity_qps_vs_unbatched",
                runs.front().qps > 0.0
                    ? batched_runs.front().qps / runs.front().qps
                    : 0.0);
    Json batched_rows = Json::MakeArray();
    for (const auto& run : batched_runs) {
      Json row = ToJson(run);
      row.MutableObject().erase("load_multiple");
      row.Set("clients_per_replica", run.multiple);
      batched_rows.Append(std::move(row));
    }
    section.Set("runs", std::move(batched_rows));
    section.Set("scheduler", std::move(scheduler_gauges));
    out.Set("batched", std::move(section));
  }

  FILE* f = std::fopen(output.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", output.c_str());
    return 1;
  }
  const std::string dump = out.Dump(2);
  std::fwrite(dump.data(), 1, dump.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", output.c_str());
  return 0;
}

}  // namespace
}  // namespace llmms::bench

int main(int argc, char** argv) { return llmms::bench::Main(argc, argv); }
