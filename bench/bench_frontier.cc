// Cost/accuracy frontier bench (BENCH_frontier.json, DESIGN.md §16): runs
// the default scenario matrix — orchestrator x token budget x pool x fault
// profile x serving mode — through eval::ScenarioMatrix and records every
// cell's reward, F1, reward/token, hedge waste, shed rate, and wall clock,
// plus the drifting-competence comparison between the lifetime-mean
// RewardFeed baseline and the sliding-window feed.
//
// Usage: bench_frontier [output.json]
//   LLMMS_BENCH_QPD  questions per domain per cell (default 2 -> 12
//                    queries/cell over the 6 canonical domains)
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

#include "llmms/common/json.h"
#include "llmms/eval/scenario_matrix.h"

namespace llmms::bench {
namespace {

size_t EnvQpd(size_t fallback) {
  const char* env = std::getenv("LLMMS_BENCH_QPD");
  if (env != nullptr) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<size_t>(v);
  }
  return fallback;
}

Json DriftToJson(const eval::DriftOutcome& outcome) {
  Json out = Json::MakeObject();
  out.Set("queries", outcome.queries);
  out.Set("total_reward", outcome.total_reward);
  out.Set("charged_tokens", outcome.charged_tokens);
  out.Set("reward_per_token", outcome.reward_per_token);
  return out;
}

int Main(int argc, char** argv) {
  const std::string output = argc > 1 ? argv[1] : "BENCH_frontier.json";

  eval::MatrixConfig config = eval::DefaultMatrix();
  config.questions_per_domain = EnvQpd(config.questions_per_domain);
  eval::ScenarioMatrix matrix(config);

  Json cells = Json::MakeArray();
  auto results = matrix.Run([](const eval::CellResult& result, size_t done,
                               size_t total) {
    std::fprintf(stderr, "[%3zu/%3zu] %s\n", done, total,
                 eval::CellTraceLine(result).c_str());
  });
  if (!results.ok()) {
    std::fprintf(stderr, "matrix failed: %s\n",
                 results.status().ToString().c_str());
    return 1;
  }
  for (const auto& result : results.value()) {
    cells.Append(eval::CellToJson(result));
  }

  // The decayed-feed acceptance scenario: mid-session competence swap, same
  // query sequence under the lifetime-mean baseline and the windowed feed.
  eval::DriftConfig drift_config;
  auto drift = eval::RunDriftComparison(drift_config);
  if (!drift.ok()) {
    std::fprintf(stderr, "drift comparison failed: %s\n",
                 drift.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "drift reward/token: lifetime=%.8f windowed=%.8f (%s)\n",
               drift->lifetime.reward_per_token,
               drift->adaptive.reward_per_token,
               drift->adaptive.reward_per_token >
                       drift->lifetime.reward_per_token
                   ? "windowed wins"
                   : "REGRESSION");

  Json out = Json::MakeObject();
  out.Set("benchmark", "frontier");
  out.Set("questions_per_domain", config.questions_per_domain);
  out.Set("seed", config.seed);
  out.Set("num_cells", results->size());
  out.Set("cells", std::move(cells));

  Json drift_json = Json::MakeObject();
  drift_json.Set("switch_after_queries", drift_config.switch_after_queries);
  drift_json.Set("window", drift_config.adaptive_feed.window);
  drift_json.Set("feed_prior_weight", drift_config.feed_prior_weight);
  drift_json.Set("lifetime", DriftToJson(drift->lifetime));
  drift_json.Set("windowed", DriftToJson(drift->adaptive));
  drift_json.Set("windowed_wins", drift->adaptive.reward_per_token >
                                      drift->lifetime.reward_per_token);
  out.Set("drift", std::move(drift_json));

  FILE* f = std::fopen(output.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", output.c_str());
    return 1;
  }
  const std::string dump = out.Dump(2);
  std::fwrite(dump.data(), 1, dump.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::fprintf(stderr, "wrote %s (%zu cells)\n", output.c_str(),
               results->size());
  return 0;
}

}  // namespace
}  // namespace llmms::bench

int main(int argc, char** argv) { return llmms::bench::Main(argc, argv); }
