// Reproduces Figure 8.3: average reward-to-tokens ratio per model/strategy.
// Expected shape (thesis §8.3.3): LLM-MS OUA shows the best trade-off
// between token usage and answer quality (early pruning conserves tokens).

#include <iostream>

#include "bench_common.h"
#include "llmms/eval/report.h"

int main() {
  using namespace llmms;
  auto world = bench::MakeBenchWorld(bench::QuestionsPerDomain());
  std::cout << "Figure 8.3 reproduction: " << world.dataset.size()
            << " TruthfulQA-style questions, token budget 2048\n\n";

  auto report = bench::RunPaperEvaluation(&world);
  eval::PrintMetricSeries(
      std::cout,
      "Figure 8.3 - Average reward-to-tokens ratio per model (per 1k tokens)",
      "reward_per_token", bench::Aggregates(report));
  std::cout << "\nMean tokens consumed per question (all participating "
               "models):\n";
  eval::PrintMetricSeries(std::cout, "Tokens per question", "tokens",
                          bench::Aggregates(report));
  std::cout << "\nFull table:\n";
  eval::PrintAggregateTable(std::cout, bench::Aggregates(report));
  return 0;
}
