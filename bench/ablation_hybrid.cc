// Ablation: the hybrid strategy the thesis's analysis proposes (§8.4) —
// OUA-style screening followed by UCB1 allocation among the survivors —
// compared against its two parents on quality and token cost.

#include <iostream>

#include "bench_common.h"
#include "llmms/common/string_util.h"
#include "llmms/core/hybrid.h"
#include "llmms/core/mab.h"
#include "llmms/core/oua.h"
#include "llmms/eval/metrics.h"

namespace {

using namespace llmms;

eval::StrategyAggregate Evaluate(bench::BenchWorld* world,
                                 core::Orchestrator* orchestrator,
                                 const std::string& label) {
  std::vector<eval::QuestionMetrics> metrics;
  for (const auto& item : world->dataset) {
    auto result = orchestrator->Run(item.question);
    if (!result.ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   result.status().ToString().c_str());
      std::abort();
    }
    auto m = eval::ScoreResponse(*world->embedder, item, result->answer);
    m.total_tokens = result->total_tokens;
    m.answer_tokens = result->answer_tokens;
    metrics.push_back(m);
  }
  return eval::Aggregate(label, metrics);
}

}  // namespace

int main() {
  using namespace llmms;
  const size_t qpd = std::min<size_t>(bench::QuestionsPerDomain(), 20);
  auto world = bench::MakeBenchWorld(qpd);
  std::cout << "Hybrid ablation (" << world.dataset.size()
            << " questions): OUA screening + UCB allocation vs. parents\n\n";

  core::OuaOrchestrator oua(world.runtime.get(), world.model_names,
                            world.embedder, {});
  core::MabOrchestrator mab(world.runtime.get(), world.model_names,
                            world.embedder, {});
  core::HybridOrchestrator hybrid(world.runtime.get(), world.model_names,
                                  world.embedder, {});

  std::vector<eval::StrategyAggregate> rows;
  rows.push_back(Evaluate(&world, &oua, "llm-ms-oua"));
  rows.push_back(Evaluate(&world, &mab, "llm-ms-mab"));
  rows.push_back(Evaluate(&world, &hybrid, "llm-ms-hybrid"));

  std::cout << "strategy        reward   f1      accuracy  tokens   "
               "rew/1k_atok\n";
  std::cout << std::string(66, '-') << "\n";
  for (const auto& row : rows) {
    std::cout << row.strategy << (row.strategy.size() < 12 ? "     " : "  ")
              << FormatDouble(row.mean_reward, 4) << "  "
              << FormatDouble(row.mean_f1, 4) << "  "
              << FormatDouble(row.accuracy, 3) << "     "
              << FormatDouble(row.mean_total_tokens, 1) << "    "
              << FormatDouble(row.mean_reward_per_answer_token * 1000.0, 3)
              << "\n";
  }
  std::cout << "\n(Hybrid aims at MAB-like quality at OUA-like token cost, "
               "§8.4's suggested trade-off.)\n";
  return 0;
}
