// Ablation: the token budget lambda_max (§6.3 uses 2048). Sweeps the budget
// and reports answer quality vs. cost for both LLM-MS strategies — where the
// curves flatten is where extra tokens stop buying quality.

#include <iostream>

#include "bench_common.h"
#include "llmms/common/string_util.h"
#include "llmms/eval/report.h"

int main() {
  using namespace llmms;
  const size_t qpd = std::min<size_t>(bench::QuestionsPerDomain(), 20);
  auto world = bench::MakeBenchWorld(qpd);
  std::cout << "Token budget sweep (" << world.dataset.size()
            << " questions)\n\n";
  std::cout << "budget  strategy     reward   f1      tokens\n";
  std::cout << "----------------------------------------------\n";

  for (size_t budget : {128u, 256u, 512u, 1024u, 2048u, 4096u}) {
    eval::HarnessConfig config;
    config.token_budget = budget;
    config.run_singles = false;
    auto report = bench::RunPaperEvaluation(&world, config);
    for (const auto& run : report.runs) {
      std::cout << budget << (budget < 1000 ? "     " : "    ")
                << run.strategy << "   "
                << FormatDouble(run.aggregate.mean_reward, 4) << "  "
                << FormatDouble(run.aggregate.mean_f1, 4) << "  "
                << FormatDouble(run.aggregate.mean_total_tokens, 1) << "\n";
    }
  }
  return 0;
}
