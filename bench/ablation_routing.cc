// Ablation: cognitive routing with semantic task indexing (§9.5). After a
// warmup phase in which the router observes model performance per task, new
// queries are routed to a subset of specialists — measuring what routing
// buys in tokens at what quality cost, vs. full-pool orchestration.

#include <iostream>

#include "bench_common.h"
#include "llmms/common/string_util.h"
#include "llmms/core/oua.h"
#include "llmms/core/router.h"
#include "llmms/eval/metrics.h"

int main() {
  using namespace llmms;
  const size_t qpd = std::min<size_t>(bench::QuestionsPerDomain(), 20);
  auto world = bench::MakeBenchWorld(qpd);

  core::IntentClassifier classifier(world.embedder);
  for (const auto& item : world.dataset) {
    if (!classifier.AddExample(item.question, item.domain).ok()) std::abort();
  }
  core::FeedbackStore feedback;
  core::EloRatings ratings;

  // Warmup: the first half of the dataset runs through the router in
  // exploration mode (full pool), populating the task index.
  const size_t half = world.dataset.size() / 2;
  core::RoutedOrchestrator::Config warm_config;
  warm_config.min_observations = 1;  // record from the start
  warm_config.route_to = 3;          // but route to the full pool
  core::RoutedOrchestrator warm(world.runtime.get(), world.model_names,
                                world.embedder, &classifier, &feedback,
                                &ratings, warm_config);
  for (size_t i = 0; i < half; ++i) {
    if (!warm.Run(world.dataset[i].question).ok()) std::abort();
  }

  // Evaluation phase: full-pool OUA vs. routed subsets of 2 and 1.
  std::cout << "Routing ablation: warmup " << half << " questions, eval "
            << world.dataset.size() - half << " questions\n\n";
  std::cout << "mode          reward   f1      accuracy  tokens\n";
  std::cout << std::string(52, '-') << "\n";

  auto evaluate = [&](core::Orchestrator* orchestrator, const char* label) {
    std::vector<eval::QuestionMetrics> metrics;
    for (size_t i = half; i < world.dataset.size(); ++i) {
      const auto& item = world.dataset[i];
      auto result = orchestrator->Run(item.question);
      if (!result.ok()) std::abort();
      auto m = eval::ScoreResponse(*world.embedder, item, result->answer);
      m.total_tokens = result->total_tokens;
      metrics.push_back(m);
    }
    const auto agg = eval::Aggregate(label, metrics);
    std::cout << label << "    " << FormatDouble(agg.mean_reward, 4) << "  "
              << FormatDouble(agg.mean_f1, 4) << "  "
              << FormatDouble(agg.accuracy, 3) << "     "
              << FormatDouble(agg.mean_total_tokens, 1) << "\n";
  };

  core::OuaOrchestrator full(world.runtime.get(), world.model_names,
                             world.embedder, {});
  evaluate(&full, "full-pool");

  for (size_t route_to : {2u, 1u}) {
    core::RoutedOrchestrator::Config config;
    config.route_to = route_to;
    config.min_observations = 5;
    core::RoutedOrchestrator routed(world.runtime.get(), world.model_names,
                                    world.embedder, &classifier, &feedback,
                                    &ratings, config);
    evaluate(&routed, route_to == 2 ? "routed-2 " : "routed-1 ");
  }

  std::cout << "\nElo ratings after the run (game-theoretic coordination):\n";
  for (const auto& [model, rating] : ratings.Ranking()) {
    std::cout << "  " << model << ": " << FormatDouble(rating, 1) << "\n";
  }
  return 0;
}
