// Ablation: MAB's exploration coefficient gamma (Algorithm 2 line 11).
// Compares the paper's decaying schedule gamma = gamma0*(1 - used/budget)
// against fixed gamma, across several gamma0 values.

#include <iostream>

#include "bench_common.h"
#include "llmms/common/string_util.h"
#include "llmms/core/mab.h"
#include "llmms/eval/metrics.h"

int main() {
  using namespace llmms;
  const size_t qpd = std::min<size_t>(bench::QuestionsPerDomain(), 20);
  auto world = bench::MakeBenchWorld(qpd);
  std::cout << "MAB gamma ablation (" << world.dataset.size()
            << " questions)\n\n";
  std::cout << "gamma0  schedule  reward   f1      tokens\n";
  std::cout << "-------------------------------------------\n";

  for (bool decay : {true, false}) {
    for (double gamma0 : {0.0, 0.1, 0.3, 0.6, 1.0}) {
      core::MabOrchestrator::Config config;
      config.gamma0 = gamma0;
      config.decay_gamma = decay;
      core::MabOrchestrator orchestrator(world.runtime.get(),
                                         world.model_names, world.embedder,
                                         config);
      std::vector<eval::QuestionMetrics> metrics;
      for (const auto& item : world.dataset) {
        auto result = orchestrator.Run(item.question);
        if (!result.ok()) {
          std::fprintf(stderr, "run failed: %s\n",
                       result.status().ToString().c_str());
          return 1;
        }
        auto m = eval::ScoreResponse(*world.embedder, item, result->answer);
        m.total_tokens = result->total_tokens;
        metrics.push_back(m);
      }
      const auto agg = eval::Aggregate("mab", metrics);
      std::cout << FormatDouble(gamma0, 2) << "    "
                << (decay ? "decaying" : "fixed   ") << "  "
                << FormatDouble(agg.mean_reward, 4) << "  "
                << FormatDouble(agg.mean_f1, 4) << "  "
                << FormatDouble(agg.mean_total_tokens, 1) << "\n";
    }
  }
  std::cout << "\n(The paper's schedule: gamma0=0.3 decaying with budget "
               "consumption.)\n";
  return 0;
}
