// Reproduces Figure 8.1: average reward per model/strategy on the
// TruthfulQA-style benchmark. Expected shape (thesis §8.3.1): the LLM-MS
// strategies out-reward every static single-model baseline, with MAB on top.

#include <iostream>

#include "bench_common.h"
#include "llmms/common/string_util.h"
#include "llmms/eval/report.h"

int main() {
  using namespace llmms;
  auto world = bench::MakeBenchWorld(bench::QuestionsPerDomain());
  std::cout << "Figure 8.1 reproduction: " << world.dataset.size()
            << " TruthfulQA-style questions, token budget 2048\n\n";

  auto report = bench::RunPaperEvaluation(&world);
  eval::PrintMetricSeries(std::cout,
                          "Figure 8.1 - Average reward per model (Eq. 8.1)",
                          "reward", bench::Aggregates(report));
  std::cout << "\nFull table:\n";
  eval::PrintAggregateTable(std::cout, bench::Aggregates(report));

  std::cout << "\nPer-domain average reward (premise check: different models "
               "win different domains):\n";
  for (const auto& run : report.runs) {
    std::cout << run.strategy << ":";
    for (const auto& [domain, agg] :
         eval::AggregateByDomain(run.strategy, run.per_question)) {
      std::cout << "  " << domain << "=" << FormatDouble(agg.mean_reward, 3);
    }
    std::cout << "\n";
  }
  return 0;
}
