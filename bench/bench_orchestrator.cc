// google-benchmark microbenchmarks for the orchestration layer itself (§8.4
// "orchestration also introduces overhead"): end-to-end latency of one
// orchestrated query per strategy, and scoring-round cost vs. model count.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "llmms/core/mab.h"
#include "llmms/core/oua.h"
#include "llmms/core/scoring.h"
#include "llmms/core/single.h"

namespace {

using namespace llmms;

bench::BenchWorld& World() {
  static auto* world = new bench::BenchWorld(bench::MakeBenchWorld(10));
  return *world;
}

void BM_OuaQuery(benchmark::State& state) {
  auto& world = World();
  core::OuaOrchestrator orchestrator(world.runtime.get(), world.model_names,
                                     world.embedder, {});
  size_t i = 0;
  for (auto _ : state) {
    const auto& item = world.dataset[i++ % world.dataset.size()];
    benchmark::DoNotOptimize(orchestrator.Run(item.question));
  }
}
BENCHMARK(BM_OuaQuery);

void BM_MabQuery(benchmark::State& state) {
  auto& world = World();
  core::MabOrchestrator orchestrator(world.runtime.get(), world.model_names,
                                     world.embedder, {});
  size_t i = 0;
  for (auto _ : state) {
    const auto& item = world.dataset[i++ % world.dataset.size()];
    benchmark::DoNotOptimize(orchestrator.Run(item.question));
  }
}
BENCHMARK(BM_MabQuery);

void BM_SingleQuery(benchmark::State& state) {
  auto& world = World();
  core::SingleModelOrchestrator orchestrator(
      world.runtime.get(), world.model_names[0], world.embedder, {});
  size_t i = 0;
  for (auto _ : state) {
    const auto& item = world.dataset[i++ % world.dataset.size()];
    benchmark::DoNotOptimize(orchestrator.Run(item.question));
  }
}
BENCHMARK(BM_SingleQuery);

void BM_ScoreRound(benchmark::State& state) {
  auto& world = World();
  const size_t num_models = static_cast<size_t>(state.range(0));
  core::ResponseScorer scorer(world.embedder, core::ScoringWeights{});
  std::vector<std::string> responses;
  for (size_t i = 0; i < num_models; ++i) {
    responses.push_back(
        "the mineral turns crimson when heated according to model " +
        std::to_string(i));
  }
  const std::string query = "what color does the mineral turn when heated";
  for (auto _ : state) {
    benchmark::DoNotOptimize(scorer.ScoreRound(query, responses));
  }
}
BENCHMARK(BM_ScoreRound)->Arg(2)->Arg(3)->Arg(6)->Arg(12);

}  // namespace

BENCHMARK_MAIN();
