// Vector-database quality bench: HNSW recall@10 and speedup vs. exact
// brute-force search, across corpus sizes and ef_search settings — the
// "sub-millisecond top-k" claim of §7.1.

#include <chrono>
#include <cmath>
#include <iostream>
#include <unordered_set>

#include "llmms/common/rng.h"
#include "llmms/common/string_util.h"
#include "llmms/vectordb/flat_index.h"
#include "llmms/vectordb/hnsw_index.h"

namespace {

using namespace llmms;
using namespace llmms::vectordb;

Vector RandomUnitVector(Rng* rng, size_t dim) {
  Vector v(dim);
  double norm_sq = 0.0;
  for (auto& x : v) {
    x = static_cast<float>(rng->Normal());
    norm_sq += static_cast<double>(x) * x;
  }
  const float inv = static_cast<float>(1.0 / std::sqrt(norm_sq));
  for (auto& x : v) x *= inv;
  return v;
}

// Text embeddings cluster by topic; model that with a Gaussian mixture
// (uniform random high-dimensional vectors are a distance-concentration
// worst case no real embedding workload resembles).
class ClusteredSampler {
 public:
  ClusteredSampler(Rng* rng, size_t dim, size_t num_clusters)
      : rng_(rng), dim_(dim) {
    for (size_t c = 0; c < num_clusters; ++c) {
      centers_.push_back(RandomUnitVector(rng, dim));
    }
  }

  Vector Sample() {
    const auto& center = centers_[static_cast<size_t>(
        rng_->UniformInt(0, static_cast<int64_t>(centers_.size()) - 1))];
    Vector v(dim_);
    double norm_sq = 0.0;
    for (size_t i = 0; i < dim_; ++i) {
      v[i] = center[i] + static_cast<float>(rng_->Normal(0.0, 0.15));
      norm_sq += static_cast<double>(v[i]) * v[i];
    }
    const float inv = static_cast<float>(1.0 / std::sqrt(norm_sq));
    for (auto& x : v) x *= inv;
    return v;
  }

 private:
  Rng* rng_;
  size_t dim_;
  std::vector<Vector> centers_;
};

}  // namespace

int main() {
  constexpr size_t kDim = 128;
  constexpr size_t kQueries = 50;
  constexpr size_t kK = 10;
  std::cout << "HNSW recall@" << kK << " and latency vs. exact search (dim="
            << kDim << ")\n\n";
  std::cout << "n       ef     recall   hnsw_us   flat_us   speedup\n";
  std::cout << "----------------------------------------------------\n";

  for (size_t n : {1000u, 5000u, 20000u}) {
    Rng rng(0xBEEF);
    ClusteredSampler sampler(&rng, kDim, /*num_clusters=*/64);
    std::vector<Vector> corpus;
    corpus.reserve(n);
    for (size_t i = 0; i < n; ++i) corpus.push_back(sampler.Sample());
    std::vector<Vector> queries;
    for (size_t i = 0; i < kQueries; ++i) {
      queries.push_back(sampler.Sample());
    }

    FlatIndex flat(kDim, DistanceMetric::kCosine);
    for (const auto& v : corpus) (void)*flat.Add(v);

    for (size_t ef : {16u, 64u, 128u}) {
      HnswIndex::Options options;
      options.ef_search = ef;
      HnswIndex hnsw(kDim, DistanceMetric::kCosine, options);
      for (const auto& v : corpus) (void)*hnsw.Add(v);

      size_t found = 0;
      size_t expected = 0;
      double hnsw_us = 0.0;
      double flat_us = 0.0;
      for (const auto& q : queries) {
        auto t0 = std::chrono::steady_clock::now();
        auto exact = *flat.Search(q, kK);
        auto t1 = std::chrono::steady_clock::now();
        auto approx = *hnsw.Search(q, kK);
        auto t2 = std::chrono::steady_clock::now();
        flat_us += std::chrono::duration<double, std::micro>(t1 - t0).count();
        hnsw_us += std::chrono::duration<double, std::micro>(t2 - t1).count();
        std::unordered_set<SlotId> truth;
        for (const auto& hit : exact) truth.insert(hit.slot);
        expected += truth.size();
        for (const auto& hit : approx) found += truth.count(hit.slot);
      }
      const double recall =
          static_cast<double>(found) / static_cast<double>(expected);
      hnsw_us /= kQueries;
      flat_us /= kQueries;
      std::cout << n << (n < 10000 ? "    " : "   ") << ef
                << (ef < 100 ? "     " : "    ") << FormatDouble(recall, 3)
                << "    " << FormatDouble(hnsw_us, 1) << "      "
                << FormatDouble(flat_us, 1) << "     "
                << FormatDouble(flat_us / hnsw_us, 1) << "x\n";
    }
  }
  return 0;
}
