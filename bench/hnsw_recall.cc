// Vector-database quality bench: HNSW recall@10 and speedup vs. exact
// brute-force search, across corpus sizes and ef_search settings — the
// "sub-millisecond top-k" claim of §7.1.
//
// The index is built ONCE per corpus size and the ef sweep reuses it via
// SearchWithEf (ef_search is a query-time knob, not a build parameter), so
// the corpus sweep scales to large n. Set LLMMS_BENCH_HNSW_N to grow the
// largest corpus (e.g. 1000000); the default keeps the quick-run sizes.

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <unordered_set>

#include "llmms/common/rng.h"
#include "llmms/common/string_util.h"
#include "llmms/vectordb/flat_index.h"
#include "llmms/vectordb/hnsw_index.h"

namespace {

using namespace llmms;
using namespace llmms::vectordb;

Vector RandomUnitVector(Rng* rng, size_t dim) {
  Vector v(dim);
  double norm_sq = 0.0;
  for (auto& x : v) {
    x = static_cast<float>(rng->Normal());
    norm_sq += static_cast<double>(x) * x;
  }
  const float inv = static_cast<float>(1.0 / std::sqrt(norm_sq));
  for (auto& x : v) x *= inv;
  return v;
}

// Text embeddings cluster by topic; model that with a Gaussian mixture
// (uniform random high-dimensional vectors are a distance-concentration
// worst case no real embedding workload resembles).
class ClusteredSampler {
 public:
  ClusteredSampler(Rng* rng, size_t dim, size_t num_clusters)
      : rng_(rng), dim_(dim) {
    for (size_t c = 0; c < num_clusters; ++c) {
      centers_.push_back(RandomUnitVector(rng, dim));
    }
  }

  Vector Sample() {
    const auto& center = centers_[static_cast<size_t>(
        rng_->UniformInt(0, static_cast<int64_t>(centers_.size()) - 1))];
    Vector v(dim_);
    double norm_sq = 0.0;
    for (size_t i = 0; i < dim_; ++i) {
      v[i] = center[i] + static_cast<float>(rng_->Normal(0.0, 0.15));
      norm_sq += static_cast<double>(v[i]) * v[i];
    }
    const float inv = static_cast<float>(1.0 / std::sqrt(norm_sq));
    for (auto& x : v) x *= inv;
    return v;
  }

 private:
  Rng* rng_;
  size_t dim_;
  std::vector<Vector> centers_;
};

size_t EnvSize(const char* name, size_t fallback) {
  const char* env = std::getenv(name);
  if (env != nullptr) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<size_t>(v);
  }
  return fallback;
}

}  // namespace

int main() {
  constexpr size_t kDim = 128;
  constexpr size_t kQueries = 50;
  constexpr size_t kK = 10;
  const size_t max_n = EnvSize("LLMMS_BENCH_HNSW_N", 20000);
  std::cout << "HNSW recall@" << kK << " and latency vs. exact search (dim="
            << kDim << ")\n\n";
  std::cout << "n       ef     recall   hnsw_us   flat_us   speedup\n";
  std::cout << "----------------------------------------------------\n";

  std::vector<size_t> sizes;
  for (size_t n : {size_t{1000}, size_t{5000}, size_t{20000}}) {
    if (n <= max_n) sizes.push_back(n);
  }
  if (sizes.empty() || sizes.back() != max_n) sizes.push_back(max_n);

  for (size_t n : sizes) {
    Rng rng(0xBEEF);
    ClusteredSampler sampler(&rng, kDim, /*num_clusters=*/64);
    std::vector<Vector> corpus;
    corpus.reserve(n);
    for (size_t i = 0; i < n; ++i) corpus.push_back(sampler.Sample());
    std::vector<Vector> queries;
    for (size_t i = 0; i < kQueries; ++i) {
      queries.push_back(sampler.Sample());
    }

    FlatIndex flat(kDim, DistanceMetric::kCosine);
    for (const auto& v : corpus) (void)*flat.Add(v);
    HnswIndex hnsw(kDim, DistanceMetric::kCosine);
    for (const auto& v : corpus) (void)*hnsw.Add(v);

    // Exact ground truth once per corpus; the ef sweep reuses it.
    std::vector<std::unordered_set<SlotId>> truth;
    double flat_us = 0.0;
    for (const auto& q : queries) {
      auto t0 = std::chrono::steady_clock::now();
      auto exact = *flat.Search(q, kK);
      auto t1 = std::chrono::steady_clock::now();
      flat_us += std::chrono::duration<double, std::micro>(t1 - t0).count();
      std::unordered_set<SlotId> hits;
      for (const auto& hit : exact) hits.insert(hit.slot);
      truth.push_back(std::move(hits));
    }
    flat_us /= kQueries;

    for (size_t ef : {16u, 64u, 128u}) {
      size_t found = 0;
      size_t expected = 0;
      double hnsw_us = 0.0;
      for (size_t q = 0; q < kQueries; ++q) {
        auto t0 = std::chrono::steady_clock::now();
        auto approx = *hnsw.SearchWithEf(queries[q], kK, ef);
        auto t1 = std::chrono::steady_clock::now();
        hnsw_us += std::chrono::duration<double, std::micro>(t1 - t0).count();
        expected += truth[q].size();
        for (const auto& hit : approx) found += truth[q].count(hit.slot);
      }
      const double recall =
          static_cast<double>(found) / static_cast<double>(expected);
      hnsw_us /= kQueries;
      std::cout << n << (n < 10000 ? "    " : "   ") << ef
                << (ef < 100 ? "     " : "    ") << FormatDouble(recall, 3)
                << "    " << FormatDouble(hnsw_us, 1) << "      "
                << FormatDouble(flat_us, 1) << "     "
                << FormatDouble(flat_us / hnsw_us, 1) << "x\n";
    }
  }
  return 0;
}
