// google-benchmark microbenchmarks for the tokenizer substrate: BPE
// training, encode/decode throughput, and word tokenization.

#include <benchmark/benchmark.h>

#include "llmms/tokenizer/bpe_tokenizer.h"
#include "llmms/tokenizer/word_tokenizer.h"

namespace {

using namespace llmms::tokenizer;

std::vector<std::string> TrainingCorpus() {
  std::vector<std::string> corpus;
  for (int i = 0; i < 50; ++i) {
    corpus.push_back(
        "language models predict the next token in the sequence and the "
        "token budget limits how many tokens a model may generate number " +
        std::to_string(i));
  }
  return corpus;
}

std::string LongText() {
  std::string text;
  for (int i = 0; i < 200; ++i) {
    text += "the model generates tokens under a budget ";
  }
  return text;
}

void BM_BpeTrain(benchmark::State& state) {
  const auto corpus = TrainingCorpus();
  BpeTokenizer::TrainOptions options;
  options.vocab_size = static_cast<int>(state.range(0));
  for (auto _ : state) {
    BpeTokenizer tokenizer;
    benchmark::DoNotOptimize(tokenizer.Train(corpus, options).ok());
  }
}
BENCHMARK(BM_BpeTrain)->Arg(512)->Arg(1024);

void BM_BpeEncode(benchmark::State& state) {
  BpeTokenizer tokenizer;
  BpeTokenizer::TrainOptions options;
  options.vocab_size = 1024;
  (void)tokenizer.Train(TrainingCorpus(), options);
  const std::string text = LongText();
  for (auto _ : state) {
    benchmark::DoNotOptimize(tokenizer.Encode(text));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_BpeEncode);

void BM_BpeDecode(benchmark::State& state) {
  BpeTokenizer tokenizer;
  BpeTokenizer::TrainOptions options;
  options.vocab_size = 1024;
  (void)tokenizer.Train(TrainingCorpus(), options);
  const auto ids = tokenizer.Encode(LongText());
  for (auto _ : state) {
    benchmark::DoNotOptimize(tokenizer.Decode(ids));
  }
}
BENCHMARK(BM_BpeDecode);

void BM_WordTokenize(benchmark::State& state) {
  WordTokenizer tokenizer;
  const std::string text = LongText();
  for (auto _ : state) {
    benchmark::DoNotOptimize(tokenizer.Tokenize(text));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_WordTokenize);

void BM_SplitSentences(benchmark::State& state) {
  std::string text;
  for (int i = 0; i < 100; ++i) {
    text += "Sentence number " + std::to_string(i) + " ends here. ";
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(SplitSentences(text));
  }
}
BENCHMARK(BM_SplitSentences);

}  // namespace

BENCHMARK_MAIN();
