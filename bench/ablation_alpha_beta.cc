// Ablation: the scoring weights alpha (query similarity) and beta
// (inter-model agreement) of Eq. 6.1 / Algorithm 1. The paper fixes
// alpha=0.7, beta=0.3; this sweep shows how the mix affects both LLM-MS
// strategies. beta = 1 - alpha throughout.

#include <iostream>

#include "bench_common.h"
#include "llmms/common/string_util.h"
#include "llmms/eval/report.h"

int main() {
  using namespace llmms;
  const size_t qpd = std::min<size_t>(bench::QuestionsPerDomain(), 20);
  auto world = bench::MakeBenchWorld(qpd);
  std::cout << "Alpha/beta ablation (" << world.dataset.size()
            << " questions): score = alpha*qSim + (1-alpha)*interSim\n\n";
  std::cout << "alpha   oua_reward  oua_f1   mab_reward  mab_f1\n";
  std::cout << "------------------------------------------------\n";

  for (double alpha : {0.0, 0.25, 0.5, 0.7, 0.9, 1.0}) {
    eval::HarnessConfig config;
    config.weights.alpha = alpha;
    config.weights.beta = 1.0 - alpha;
    config.run_singles = false;
    auto report = bench::RunPaperEvaluation(&world, config);
    const auto* oua = report.Find("llm-ms-oua");
    const auto* mab = report.Find("llm-ms-mab");
    std::cout << FormatDouble(alpha, 2) << "    "
              << FormatDouble(oua->aggregate.mean_reward, 4) << "      "
              << FormatDouble(oua->aggregate.mean_f1, 4) << "   "
              << FormatDouble(mab->aggregate.mean_reward, 4) << "      "
              << FormatDouble(mab->aggregate.mean_f1, 4) << "\n";
  }
  std::cout << "\n(The paper's default alpha=0.7 balances topical alignment "
               "against consensus.)\n";
  return 0;
}
