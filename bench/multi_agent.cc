// Extension bench: the multi-agent collaboration framework (§9.5) on a
// composite (multi-part) question benchmark — decompose/research/verify/
// compose vs. a single orchestration pass over the fused question.

#include <iostream>

#include "bench_common.h"
#include "llmms/common/string_util.h"
#include "llmms/core/agents.h"
#include "llmms/core/oua.h"
#include "llmms/eval/metrics.h"

int main() {
  using namespace llmms;
  const size_t qpd = std::min<size_t>(bench::QuestionsPerDomain(), 20);
  auto world = bench::MakeBenchWorld(qpd);
  const auto composites =
      eval::GenerateCompositeDataset(world.dataset, world.dataset.size() / 2);
  std::cout << "Multi-agent pipeline on " << composites.size()
            << " composite (two-part) questions\n\n";

  core::MultiAgentPipeline pipeline(world.runtime.get(), world.model_names,
                                    world.embedder, {});
  core::OuaOrchestrator single_shot(world.runtime.get(), world.model_names,
                                    world.embedder, {});

  double crew_reward = 0.0;
  double crew_f1 = 0.0;
  size_t crew_tokens = 0;
  size_t crew_correct = 0;
  double solo_reward = 0.0;
  double solo_f1 = 0.0;
  size_t solo_tokens = 0;
  size_t solo_correct = 0;
  size_t retries = 0;

  for (const auto& item : composites) {
    auto crew = pipeline.Run(item.question);
    auto solo = single_shot.Run(item.question);
    if (!crew.ok() || !solo.ok()) {
      std::cerr << "run failed\n";
      return 1;
    }
    const auto crew_metrics =
        eval::ScoreResponse(*world.embedder, item, crew->answer);
    const auto solo_metrics =
        eval::ScoreResponse(*world.embedder, item, solo->answer);
    crew_reward += crew_metrics.reward;
    crew_f1 += crew_metrics.f1;
    crew_tokens += crew->total_tokens;
    crew_correct += crew_metrics.correct;
    solo_reward += solo_metrics.reward;
    solo_f1 += solo_metrics.f1;
    solo_tokens += solo->total_tokens;
    solo_correct += solo_metrics.correct;
    for (const auto& sub : crew->sub_results) retries += sub.retried;
  }

  const double n = static_cast<double>(composites.size());
  std::cout << "mode          reward   f1      accuracy  tokens/question\n";
  std::cout << std::string(58, '-') << "\n";
  std::cout << "single-shot   " << FormatDouble(solo_reward / n, 4) << "  "
            << FormatDouble(solo_f1 / n, 4) << "  "
            << FormatDouble(solo_correct / n, 3) << "     "
            << FormatDouble(solo_tokens / n, 1) << "\n";
  std::cout << "multi-agent   " << FormatDouble(crew_reward / n, 4) << "  "
            << FormatDouble(crew_f1 / n, 4) << "  "
            << FormatDouble(crew_correct / n, 3) << "     "
            << FormatDouble(crew_tokens / n, 1) << "\n";
  std::cout << "\n(" << retries << " verifier retries across "
            << composites.size() * 2 << " sub-questions)\n";
  return 0;
}
