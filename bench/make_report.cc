// Regenerates the measured tables of EXPERIMENTS.md as markdown: the full
// five-mode comparison plus one series per paper figure. Redirect to a file
// to refresh the documentation after a change:
//
//   ./build/bench/make_report > report.md

#include <iostream>

#include "bench_common.h"
#include "llmms/common/string_util.h"
#include "llmms/eval/report.h"

int main() {
  using namespace llmms;
  auto world = bench::MakeBenchWorld(bench::QuestionsPerDomain());
  auto report = bench::RunPaperEvaluation(&world);
  const auto rows = bench::Aggregates(report);

  std::cout << "## Measured results (" << world.dataset.size()
            << " questions, token budget 2048, alpha=0.7/beta=0.3)\n\n";
  eval::PrintMarkdownTable(std::cout, rows);

  auto series = [&](const char* title, const char* metric) {
    std::cout << "\n### " << title << "\n\n| strategy | value |\n|---|---|\n";
    for (const auto& row : rows) {
      double value = 0.0;
      if (std::string(metric) == "reward") value = row.mean_reward;
      if (std::string(metric) == "f1") value = row.mean_f1;
      if (std::string(metric) == "ratio") {
        value = row.mean_reward_per_answer_token * 1000.0;
      }
      std::cout << "| " << row.strategy << " | " << FormatDouble(value, 4);
      if (std::string(metric) == "reward") {
        std::cout << " ± " << FormatDouble(row.reward_sem, 4);
      }
      std::cout << " |\n";
    }
  };
  series("Figure 8.1 — average reward (± SEM)", "reward");
  series("Figure 8.2 — average F1", "f1");
  series("Figure 8.3 — reward per 1k answer tokens", "ratio");

  std::cout << "\n### Per-domain average reward\n\n| strategy |";
  const auto domains = eval::AggregateByDomain(
      report.runs.front().strategy, report.runs.front().per_question);
  for (const auto& [domain, agg] : domains) std::cout << " " << domain << " |";
  std::cout << "\n|---|";
  for (size_t i = 0; i < domains.size(); ++i) std::cout << "---|";
  std::cout << "\n";
  for (const auto& run : report.runs) {
    std::cout << "| " << run.strategy << " |";
    for (const auto& [domain, agg] :
         eval::AggregateByDomain(run.strategy, run.per_question)) {
      std::cout << " " << FormatDouble(agg.mean_reward, 3) << " |";
    }
    std::cout << "\n";
  }
  return 0;
}
