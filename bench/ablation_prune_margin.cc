// Ablation: OUA's pruning margin (Algorithm 1 line 21) and early-stop margin
// (line 17). Small margins prune/stop aggressively and save tokens at some
// F1 risk; the thesis's literal 0.5 (on its embedding scale) disables both
// behaviors on our hash-embedding cosine scale — visible in the last row.

#include <iostream>

#include "bench_common.h"
#include "llmms/common/string_util.h"
#include "llmms/eval/report.h"

int main() {
  using namespace llmms;
  const size_t qpd = std::min<size_t>(bench::QuestionsPerDomain(), 20);
  auto world = bench::MakeBenchWorld(qpd);
  std::cout << "OUA margin ablation (" << world.dataset.size()
            << " questions); early_stop_margin = prune_margin + 0.02\n\n";
  std::cout << "margin  reward   f1      tokens   rew/1k_tok\n";
  std::cout << "---------------------------------------------\n";

  for (double margin : {0.0, 0.05, 0.10, 0.20, 0.35, 0.5}) {
    eval::HarnessConfig config;
    config.oua_prune_margin = margin;
    config.oua_early_stop_margin = margin + 0.02;
    config.run_singles = false;
    config.run_mab = false;
    auto report = bench::RunPaperEvaluation(&world, config);
    const auto& agg = report.Find("llm-ms-oua")->aggregate;
    std::cout << FormatDouble(margin, 2) << "    "
              << FormatDouble(agg.mean_reward, 4) << "  "
              << FormatDouble(agg.mean_f1, 4) << "  "
              << FormatDouble(agg.mean_total_tokens, 1) << "    "
              << FormatDouble(agg.mean_reward_per_total_token * 1000.0, 4)
              << "\n";
  }
  return 0;
}
