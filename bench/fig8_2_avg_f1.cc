// Reproduces Figure 8.2: average F1 score per model/strategy. Expected
// shape (thesis §8.3.2): LLM-MS OUA achieves the highest average F1.

#include <iostream>

#include "bench_common.h"
#include "llmms/eval/report.h"

int main() {
  using namespace llmms;
  auto world = bench::MakeBenchWorld(bench::QuestionsPerDomain());
  std::cout << "Figure 8.2 reproduction: " << world.dataset.size()
            << " TruthfulQA-style questions, token budget 2048\n\n";

  auto report = bench::RunPaperEvaluation(&world);
  eval::PrintMetricSeries(std::cout, "Figure 8.2 - Average F1 score per model",
                          "f1", bench::Aggregates(report));
  std::cout << "\nAccuracy (fraction of answers closer to the correct set "
               "than the misconception set):\n";
  eval::PrintMetricSeries(std::cout, "Accuracy per model", "accuracy",
                          bench::Aggregates(report));
  std::cout << "\nFull table:\n";
  eval::PrintAggregateTable(std::cout, bench::Aggregates(report));
  return 0;
}
