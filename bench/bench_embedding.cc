// google-benchmark microbenchmarks for the embedding substrate (§6.2):
// embedding throughput at several text lengths, cache effectiveness, and
// similarity kernels.

#include <benchmark/benchmark.h>

#include "llmms/embedding/embedding_cache.h"
#include "llmms/embedding/hash_embedder.h"
#include "llmms/embedding/similarity.h"

namespace {

using namespace llmms;
using namespace llmms::embedding;

std::string MakeText(size_t words) {
  static const char* kWords[] = {"mineral",  "crimson", "heated",  "battle",
                                 "general",  "capital", "river",   "language",
                                 "sequence", "number",  "question", "answer"};
  std::string text;
  for (size_t i = 0; i < words; ++i) {
    if (!text.empty()) text += ' ';
    text += kWords[i % 12];
    text += std::to_string(i % 7);
  }
  return text;
}

void BM_EmbedText(benchmark::State& state) {
  HashEmbedder embedder;
  const std::string text = MakeText(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(embedder.Embed(text));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_EmbedText)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_EmbedCached(benchmark::State& state) {
  auto inner = std::make_shared<HashEmbedder>();
  EmbeddingCache cache(inner, 128);
  const std::string text = MakeText(128);
  cache.Embed(text);  // warm
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Embed(text));
  }
}
BENCHMARK(BM_EmbedCached);

void BM_CosineSimilarity(benchmark::State& state) {
  HashEmbedder embedder;
  const auto a = embedder.Embed(MakeText(100));
  const auto b = embedder.Embed(MakeText(90));
  for (auto _ : state) {
    benchmark::DoNotOptimize(CosineSimilarity(a, b));
  }
}
BENCHMARK(BM_CosineSimilarity);

void BM_DotProduct(benchmark::State& state) {
  HashEmbedder embedder;
  const auto a = embedder.Embed(MakeText(100));
  const auto b = embedder.Embed(MakeText(90));
  for (auto _ : state) {
    benchmark::DoNotOptimize(DotProduct(a, b));
  }
}
BENCHMARK(BM_DotProduct);

}  // namespace

BENCHMARK_MAIN();
