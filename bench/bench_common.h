#ifndef LLMMS_BENCH_BENCH_COMMON_H_
#define LLMMS_BENCH_BENCH_COMMON_H_

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "llmms/embedding/embedding_cache.h"
#include "llmms/embedding/hash_embedder.h"
#include "llmms/eval/harness.h"
#include "llmms/eval/qa_dataset.h"
#include "llmms/hardware/placement.h"
#include "llmms/llm/model_profile.h"
#include "llmms/llm/registry.h"
#include "llmms/llm/runtime.h"
#include "llmms/llm/synthetic_model.h"

namespace llmms::bench {

// The evaluation platform used by every figure/ablation bench: the three
// paper models on a simulated Tesla V100, a TruthfulQA-style benchmark, and
// an embedding cache in front of the scorer (the orchestrators re-embed
// partial responses every round).
struct BenchWorld {
  std::shared_ptr<const embedding::Embedder> embedder;
  std::shared_ptr<llm::KnowledgeBase> knowledge;
  std::shared_ptr<llm::ModelRegistry> registry;
  std::shared_ptr<hardware::HardwareManager> hardware;
  std::unique_ptr<llm::ModelRuntime> runtime;
  std::vector<llm::QaItem> dataset;
  std::vector<std::string> model_names;
};

// Questions per domain: 50 by default (300 questions, the paper-scale run);
// override with LLMMS_BENCH_QPD for quick runs.
inline size_t QuestionsPerDomain() {
  const char* env = std::getenv("LLMMS_BENCH_QPD");
  if (env != nullptr) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<size_t>(v);
  }
  return 50;
}

inline BenchWorld MakeBenchWorld(size_t questions_per_domain) {
  BenchWorld world;
  auto hash_embedder = std::make_shared<embedding::HashEmbedder>();
  world.embedder = std::make_shared<embedding::EmbeddingCache>(
      hash_embedder, /*capacity=*/4096);

  eval::DatasetOptions dataset_options;
  dataset_options.questions_per_domain = questions_per_domain;
  world.dataset = eval::GenerateDataset(dataset_options);

  auto knowledge = std::make_shared<llm::KnowledgeBase>(world.embedder);
  if (!knowledge->AddAll(world.dataset).ok()) std::abort();
  world.knowledge = knowledge;

  world.registry = std::make_shared<llm::ModelRegistry>();
  for (const auto& profile : llm::DefaultProfiles()) {
    world.model_names.push_back(profile.name);
    if (!world.registry
             ->Register(std::make_shared<llm::SyntheticModel>(profile,
                                                              knowledge))
             .ok()) {
      std::abort();
    }
  }

  hardware::DeviceSpec v100;
  v100.name = "tesla-v100-0";
  v100.kind = hardware::DeviceKind::kGpu;
  v100.memory_mb = 32 * 1024;
  world.hardware = std::make_shared<hardware::HardwareManager>(
      std::vector<hardware::DeviceSpec>{v100});

  world.runtime = std::make_unique<llm::ModelRuntime>(world.registry,
                                                      world.hardware, 4);
  for (const auto& name : world.model_names) {
    if (!world.runtime->LoadModel(name).ok()) std::abort();
  }
  return world;
}

// Runs the five execution modes of §8.1 and returns the report.
inline eval::EvaluationReport RunPaperEvaluation(
    BenchWorld* world, eval::HarnessConfig config = {}) {
  eval::EvaluationHarness harness(world->runtime.get(), world->embedder,
                                  world->model_names, config);
  auto report = harness.Run(world->dataset);
  if (!report.ok()) {
    std::fprintf(stderr, "evaluation failed: %s\n",
                 report.status().ToString().c_str());
    std::abort();
  }
  return std::move(report).value();
}

inline std::vector<eval::StrategyAggregate> Aggregates(
    const eval::EvaluationReport& report) {
  std::vector<eval::StrategyAggregate> rows;
  rows.reserve(report.runs.size());
  for (const auto& run : report.runs) rows.push_back(run.aggregate);
  return rows;
}

}  // namespace llmms::bench

#endif  // LLMMS_BENCH_BENCH_COMMON_H_
