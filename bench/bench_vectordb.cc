// google-benchmark microbenchmarks for the vector-database substrate:
// index build, exact/approximate query, and collection upsert throughput.

#include <benchmark/benchmark.h>

#include "llmms/common/fs.h"
#include "llmms/common/rng.h"
#include "llmms/vectordb/collection.h"
#include "llmms/vectordb/database.h"
#include "llmms/vectordb/flat_index.h"
#include "llmms/vectordb/hnsw_index.h"
#include "llmms/vectordb/quantizer.h"
#include "llmms/vectordb/wal.h"

namespace {

using namespace llmms;
using namespace llmms::vectordb;

Vector RandomVector(Rng* rng, size_t dim) {
  Vector v(dim);
  for (auto& x : v) x = static_cast<float>(rng->Normal());
  return v;
}

std::vector<Vector> Corpus(size_t n, size_t dim) {
  Rng rng(42);
  std::vector<Vector> corpus;
  corpus.reserve(n);
  for (size_t i = 0; i < n; ++i) corpus.push_back(RandomVector(&rng, dim));
  return corpus;
}

void BM_FlatIndexQuery(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  constexpr size_t kDim = 128;
  const auto corpus = Corpus(n, kDim);
  FlatIndex index(kDim, DistanceMetric::kCosine);
  for (const auto& v : corpus) (void)*index.Add(v);
  Rng rng(7);
  const auto query = RandomVector(&rng, kDim);
  for (auto _ : state) {
    benchmark::DoNotOptimize(*index.Search(query, 10));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_FlatIndexQuery)->Arg(1000)->Arg(10000);

void BM_HnswIndexQuery(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  constexpr size_t kDim = 128;
  const auto corpus = Corpus(n, kDim);
  HnswIndex index(kDim, DistanceMetric::kCosine);
  for (const auto& v : corpus) (void)*index.Add(v);
  Rng rng(7);
  const auto query = RandomVector(&rng, kDim);
  for (auto _ : state) {
    benchmark::DoNotOptimize(*index.Search(query, 10));
  }
}
BENCHMARK(BM_HnswIndexQuery)->Arg(1000)->Arg(10000);

void BM_HnswIndexBuild(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  constexpr size_t kDim = 64;
  const auto corpus = Corpus(n, kDim);
  for (auto _ : state) {
    HnswIndex index(kDim, DistanceMetric::kCosine);
    for (const auto& v : corpus) (void)*index.Add(v);
    benchmark::DoNotOptimize(index.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_HnswIndexBuild)->Arg(1000);

void BM_QuantizedFlatQuery(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  constexpr size_t kDim = 128;
  const auto corpus = Corpus(n, kDim);
  ScalarQuantizer quantizer;
  (void)quantizer.Train(corpus);
  QuantizedFlatIndex index(quantizer, DistanceMetric::kCosine);
  for (const auto& v : corpus) (void)*index.Add(v);
  Rng rng(7);
  const auto query = RandomVector(&rng, kDim);
  for (auto _ : state) {
    benchmark::DoNotOptimize(*index.Search(query, 10));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_QuantizedFlatQuery)->Arg(1000)->Arg(10000);

void BM_CollectionUpsert(benchmark::State& state) {
  constexpr size_t kDim = 128;
  Rng rng(9);
  Collection::Options options;
  options.dimension = kDim;
  options.index_kind = IndexKind::kHnsw;
  Collection collection("bench", options);
  size_t i = 0;
  for (auto _ : state) {
    VectorRecord record;
    record.id = "rec-" + std::to_string(i++);
    record.vector = RandomVector(&rng, kDim);
    record.metadata["k"] = "v";
    benchmark::DoNotOptimize(collection.Upsert(std::move(record)).ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_CollectionUpsert);

void BM_CollectionFilteredQuery(benchmark::State& state) {
  constexpr size_t kDim = 64;
  Rng rng(11);
  Collection::Options options;
  options.dimension = kDim;
  options.index_kind = IndexKind::kHnsw;
  Collection collection("bench", options);
  for (size_t i = 0; i < 2000; ++i) {
    VectorRecord record;
    record.id = "rec-" + std::to_string(i);
    record.vector = RandomVector(&rng, kDim);
    record.metadata["bucket"] = std::to_string(i % 4);
    (void)collection.Upsert(std::move(record));
  }
  const auto query = RandomVector(&rng, kDim);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        *collection.Query(query, 5, {{"bucket", "2"}}));
  }
}
BENCHMARK(BM_CollectionFilteredQuery);

// Durability phase: WAL append throughput per sync policy — the price of
// the fsync barrier. kNone is the in-memory ceiling, kGroupCommit amortizes
// one fsync over group_commit_every appends, kEveryRecord is the
// acked-means-durable mode the crash harness certifies.
void BM_WalAppend(benchmark::State& state, WriteAheadLog::SyncPolicy policy) {
  constexpr size_t kDim = 128;
  Rng rng(17);
  RealFileSystem fs;
  const std::string path = "/tmp/llmms_bench.wal";
  (void)fs.Remove(path);
  WriteAheadLog::Options options;
  options.sync_policy = policy;
  auto log = WriteAheadLog::Open(&fs, path, options);
  if (!log.ok()) {
    state.SkipWithError("cannot open WAL");
    return;
  }
  VectorRecord record;
  record.vector = RandomVector(&rng, kDim);
  record.metadata["k"] = "v";
  size_t i = 0;
  uint64_t bytes = 0;
  for (auto _ : state) {
    record.id = "rec-" + std::to_string(i++);
    benchmark::DoNotOptimize((*log)->AppendUpsert(record).ok());
    bytes += kDim * sizeof(float);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.SetBytesProcessed(static_cast<int64_t>(bytes));
  (void)fs.Remove(path);
}

void BM_WalAppendSyncNone(benchmark::State& state) {
  BM_WalAppend(state, WriteAheadLog::SyncPolicy::kNone);
}
BENCHMARK(BM_WalAppendSyncNone);

void BM_WalAppendGroupCommit(benchmark::State& state) {
  BM_WalAppend(state, WriteAheadLog::SyncPolicy::kGroupCommit);
}
BENCHMARK(BM_WalAppendGroupCommit);

void BM_WalAppendEveryRecord(benchmark::State& state) {
  BM_WalAppend(state, WriteAheadLog::SyncPolicy::kEveryRecord);
}
BENCHMARK(BM_WalAppendEveryRecord);

void BM_SnapshotSave(benchmark::State& state) {
  constexpr size_t kDim = 128;
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(23);
  RealFileSystem fs;
  VectorDatabase db;
  auto collection = db.CreateCollection("bench", [] {
    Collection::Options o;
    o.dimension = kDim;
    o.index_kind = IndexKind::kFlat;
    return o;
  }());
  for (size_t i = 0; i < n; ++i) {
    VectorRecord record;
    record.id = "rec-" + std::to_string(i);
    record.vector = RandomVector(&rng, kDim);
    (void)(*collection)->Upsert(std::move(record));
  }
  const std::string path = "/tmp/llmms_bench_snapshot.bin";
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.Save(&fs, path).ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
  (void)fs.Remove(path);
}
BENCHMARK(BM_SnapshotSave)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
