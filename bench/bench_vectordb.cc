// google-benchmark microbenchmarks for the vector-database substrate:
// index build, exact/approximate query, and collection upsert throughput.

#include <benchmark/benchmark.h>

#include "llmms/common/rng.h"
#include "llmms/vectordb/collection.h"
#include "llmms/vectordb/flat_index.h"
#include "llmms/vectordb/hnsw_index.h"
#include "llmms/vectordb/quantizer.h"

namespace {

using namespace llmms;
using namespace llmms::vectordb;

Vector RandomVector(Rng* rng, size_t dim) {
  Vector v(dim);
  for (auto& x : v) x = static_cast<float>(rng->Normal());
  return v;
}

std::vector<Vector> Corpus(size_t n, size_t dim) {
  Rng rng(42);
  std::vector<Vector> corpus;
  corpus.reserve(n);
  for (size_t i = 0; i < n; ++i) corpus.push_back(RandomVector(&rng, dim));
  return corpus;
}

void BM_FlatIndexQuery(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  constexpr size_t kDim = 128;
  const auto corpus = Corpus(n, kDim);
  FlatIndex index(kDim, DistanceMetric::kCosine);
  for (const auto& v : corpus) (void)*index.Add(v);
  Rng rng(7);
  const auto query = RandomVector(&rng, kDim);
  for (auto _ : state) {
    benchmark::DoNotOptimize(*index.Search(query, 10));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_FlatIndexQuery)->Arg(1000)->Arg(10000);

void BM_HnswIndexQuery(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  constexpr size_t kDim = 128;
  const auto corpus = Corpus(n, kDim);
  HnswIndex index(kDim, DistanceMetric::kCosine);
  for (const auto& v : corpus) (void)*index.Add(v);
  Rng rng(7);
  const auto query = RandomVector(&rng, kDim);
  for (auto _ : state) {
    benchmark::DoNotOptimize(*index.Search(query, 10));
  }
}
BENCHMARK(BM_HnswIndexQuery)->Arg(1000)->Arg(10000);

void BM_HnswIndexBuild(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  constexpr size_t kDim = 64;
  const auto corpus = Corpus(n, kDim);
  for (auto _ : state) {
    HnswIndex index(kDim, DistanceMetric::kCosine);
    for (const auto& v : corpus) (void)*index.Add(v);
    benchmark::DoNotOptimize(index.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_HnswIndexBuild)->Arg(1000);

void BM_QuantizedFlatQuery(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  constexpr size_t kDim = 128;
  const auto corpus = Corpus(n, kDim);
  ScalarQuantizer quantizer;
  (void)quantizer.Train(corpus);
  QuantizedFlatIndex index(quantizer, DistanceMetric::kCosine);
  for (const auto& v : corpus) (void)*index.Add(v);
  Rng rng(7);
  const auto query = RandomVector(&rng, kDim);
  for (auto _ : state) {
    benchmark::DoNotOptimize(*index.Search(query, 10));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_QuantizedFlatQuery)->Arg(1000)->Arg(10000);

void BM_CollectionUpsert(benchmark::State& state) {
  constexpr size_t kDim = 128;
  Rng rng(9);
  Collection::Options options;
  options.dimension = kDim;
  options.index_kind = IndexKind::kHnsw;
  Collection collection("bench", options);
  size_t i = 0;
  for (auto _ : state) {
    VectorRecord record;
    record.id = "rec-" + std::to_string(i++);
    record.vector = RandomVector(&rng, kDim);
    record.metadata["k"] = "v";
    benchmark::DoNotOptimize(collection.Upsert(std::move(record)).ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_CollectionUpsert);

void BM_CollectionFilteredQuery(benchmark::State& state) {
  constexpr size_t kDim = 64;
  Rng rng(11);
  Collection::Options options;
  options.dimension = kDim;
  options.index_kind = IndexKind::kHnsw;
  Collection collection("bench", options);
  for (size_t i = 0; i < 2000; ++i) {
    VectorRecord record;
    record.id = "rec-" + std::to_string(i);
    record.vector = RandomVector(&rng, kDim);
    record.metadata["bucket"] = std::to_string(i % 4);
    (void)collection.Upsert(std::move(record));
  }
  const auto query = RandomVector(&rng, kDim);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        *collection.Query(query, 5, {{"bucket", "2"}}));
  }
}
BENCHMARK(BM_CollectionFilteredQuery);

}  // namespace

BENCHMARK_MAIN();
