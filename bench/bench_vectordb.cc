// Vector-database benchmark harness (BENCH_vectordb.json): the recorded
// performance baseline for the sharded, quantized RAG substrate
// (DESIGN.md §15) plus the durability-plane throughput numbers the crash
// harness certifies.
//
// Phase 1 (durability): WAL append throughput per sync policy — kNone is
// the in-memory ceiling, kGroupCommit amortizes one fsync over
// group_commit_every appends, kEveryRecord is the acked-means-durable mode
// — and whole-database snapshot save throughput.
//
// Phase 2 (Pareto): a clustered corpus of LLMMS_BENCH_VECTORS embeddings
// (default 1M) is loaded into ShardedCollections across a shard-count sweep,
// exact and quantized (two-stage int8 scan + full-precision re-rank, with an
// overfetch sweep). Every configuration reports recall@k against the
// single-shard exact ground truth and sustained query throughput: the
// recall-vs-QPS Pareto frontier. The headline is the fastest multi-shard
// quantized point whose recall is within 0.5% of exact.
//
// Usage: bench_vectordb [output.json]
//   LLMMS_BENCH_VECTORS   corpus size for the Pareto phase (default 1000000)
//   LLMMS_BENCH_DIM       embedding dimension (default 64)
//   LLMMS_BENCH_QUERIES   query-set size (default 24)
//   LLMMS_BENCH_K         top-k per query (default 10)
//   LLMMS_BENCH_POOL      query fan-out pool threads (default: hardware
//                         concurrency; 1 disables the pool)
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "llmms/common/fs.h"
#include "llmms/common/json.h"
#include "llmms/common/rng.h"
#include "llmms/common/thread_pool.h"
#include "llmms/vectordb/collection.h"
#include "llmms/vectordb/database.h"
#include "llmms/vectordb/sharded_collection.h"
#include "llmms/vectordb/wal.h"

namespace llmms::bench {
namespace {

using Clock = std::chrono::steady_clock;
using vectordb::Collection;
using vectordb::ShardedCollection;
using vectordb::Vector;
using vectordb::VectorRecord;
using vectordb::WriteAheadLog;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

size_t EnvSize(const char* name, size_t fallback) {
  const char* env = std::getenv(name);
  if (env != nullptr) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<size_t>(v);
  }
  return fallback;
}

// Text embeddings cluster by topic; model that with a Gaussian mixture
// (uniform random high-dimensional vectors are a distance-concentration
// worst case no real embedding workload resembles).
class ClusteredSampler {
 public:
  ClusteredSampler(Rng* rng, size_t dim, size_t num_clusters)
      : rng_(rng), dim_(dim) {
    for (size_t c = 0; c < num_clusters; ++c) {
      Vector center(dim);
      for (auto& x : center) x = static_cast<float>(rng->Normal());
      centers_.push_back(Normalized(center));
    }
  }

  Vector Sample() {
    const auto& center = centers_[static_cast<size_t>(
        rng_->UniformInt(0, static_cast<int64_t>(centers_.size()) - 1))];
    Vector v(dim_);
    for (size_t i = 0; i < dim_; ++i) {
      v[i] = center[i] + static_cast<float>(rng_->Normal(0.0, 0.15));
    }
    return Normalized(v);
  }

 private:
  static Vector Normalized(Vector v) {
    double norm_sq = 0.0;
    for (float x : v) norm_sq += static_cast<double>(x) * x;
    const float inv = static_cast<float>(1.0 / std::sqrt(norm_sq));
    for (auto& x : v) x *= inv;
    return v;
  }

  Rng* rng_;
  size_t dim_;
  std::vector<Vector> centers_;
};

// --- Phase 1: durability ---------------------------------------------------

Json BenchWalAppend(WriteAheadLog::SyncPolicy policy, const char* label,
                    size_t appends, size_t dim) {
  RealFileSystem fs;
  const std::string path = "/tmp/llmms_bench.wal";
  (void)fs.Remove(path);
  WriteAheadLog::Options options;
  options.sync_policy = policy;
  auto log = WriteAheadLog::Open(&fs, path, options);
  Json row = Json::MakeObject();
  row.Set("sync_policy", label);
  row.Set("appends", appends);
  if (!log.ok()) {
    row.Set("error", log.status().ToString());
    return row;
  }
  Rng rng(17);
  VectorRecord record;
  record.vector.resize(dim);
  for (auto& x : record.vector) x = static_cast<float>(rng.Normal());
  record.metadata["k"] = "v";
  const auto start = Clock::now();
  for (size_t i = 0; i < appends; ++i) {
    record.id = "rec-" + std::to_string(i);
    if (!(*log)->AppendUpsert(record).ok()) break;
  }
  const double seconds = SecondsSince(start);
  row.Set("seconds", seconds);
  row.Set("appends_per_sec",
          seconds > 0.0 ? static_cast<double>(appends) / seconds : 0.0);
  (void)fs.Remove(path);
  return row;
}

Json BenchSnapshotSave(size_t items, size_t dim) {
  RealFileSystem fs;
  vectordb::VectorDatabase db;
  Collection::Options options;
  options.dimension = dim;
  options.index_kind = vectordb::IndexKind::kFlat;
  auto collection = db.CreateCollection("bench", options);
  Rng rng(23);
  for (size_t i = 0; i < items; ++i) {
    VectorRecord record;
    record.id = "rec-" + std::to_string(i);
    record.vector.resize(dim);
    for (auto& x : record.vector) x = static_cast<float>(rng.Normal());
    (void)(*collection)->Upsert(std::move(record));
  }
  const std::string path = "/tmp/llmms_bench_snapshot.bin";
  // A warmup save, then timed saves until ~0.5s of samples.
  (void)db.Save(&fs, path);
  size_t saves = 0;
  const auto start = Clock::now();
  double seconds = 0.0;
  while (seconds < 0.5) {
    (void)db.Save(&fs, path);
    ++saves;
    seconds = SecondsSince(start);
  }
  (void)fs.Remove(path);
  Json row = Json::MakeObject();
  row.Set("items", items);
  row.Set("saves", saves);
  row.Set("seconds", seconds);
  row.Set("items_per_sec",
          seconds > 0.0
              ? static_cast<double>(items) * static_cast<double>(saves) /
                    seconds
              : 0.0);
  return row;
}

// --- Phase 2: the recall-vs-QPS Pareto -------------------------------------

struct ParetoRow {
  size_t shards = 0;
  bool quantized = false;
  size_t overfetch = 0;
  double recall = 0.0;
  double qps = 0.0;
  double mean_query_ms = 0.0;
  double build_seconds = 0.0;
};

std::unique_ptr<ShardedCollection> BuildCollection(
    const std::vector<Vector>& corpus, size_t dim, size_t shards,
    bool quantized, ThreadPool* pool, double* build_seconds) {
  ShardedCollection::Options options;
  options.collection.dimension = dim;
  options.collection.metric = vectordb::DistanceMetric::kCosine;
  options.collection.index_kind = vectordb::IndexKind::kFlat;
  options.collection.quantization.enabled = quantized;
  options.collection.quantization.train_size = 4096;
  options.num_shards = shards;
  options.pool = pool;
  auto collection = std::make_unique<ShardedCollection>("pareto", options);
  const auto start = Clock::now();
  constexpr size_t kBatch = 100000;
  std::vector<VectorRecord> batch;
  batch.reserve(kBatch);
  for (size_t i = 0; i < corpus.size(); ++i) {
    VectorRecord record;
    record.id = "v-" + std::to_string(i);
    record.vector = corpus[i];
    batch.push_back(std::move(record));
    if (batch.size() == kBatch || i + 1 == corpus.size()) {
      (void)collection->UpsertBatch(std::move(batch));
      batch.clear();
      batch.reserve(kBatch);
    }
  }
  *build_seconds = SecondsSince(start);
  return collection;
}

// Recall@k of `collection` against per-query ground-truth id sets, then
// sustained throughput: passes over the query set until >= 0.5s elapsed.
ParetoRow MeasureRow(const ShardedCollection& collection,
                     const std::vector<Vector>& queries, size_t k,
                     const std::vector<std::unordered_set<std::string>>&
                         truth) {
  ParetoRow row;
  size_t found = 0;
  size_t expected = 0;
  for (size_t q = 0; q < queries.size(); ++q) {
    auto results = *collection.Query(queries[q], k);
    expected += truth[q].size();
    for (const auto& hit : results) found += truth[q].count(hit.id);
  }
  row.recall = expected > 0
                   ? static_cast<double>(found) / static_cast<double>(expected)
                   : 0.0;
  size_t served = 0;
  const auto start = Clock::now();
  double seconds = 0.0;
  while (seconds < 0.5) {
    for (const auto& q : queries) (void)*collection.Query(q, k);
    served += queries.size();
    seconds = SecondsSince(start);
  }
  row.qps = seconds > 0.0 ? static_cast<double>(served) / seconds : 0.0;
  row.mean_query_ms =
      served > 0 ? seconds * 1e3 / static_cast<double>(served) : 0.0;
  return row;
}

Json ToJson(const ParetoRow& row) {
  Json out = Json::MakeObject();
  out.Set("shards", row.shards);
  out.Set("quantized", row.quantized);
  if (row.quantized) out.Set("overfetch", row.overfetch);
  out.Set("recall_at_k", row.recall);
  out.Set("qps", row.qps);
  out.Set("mean_query_ms", row.mean_query_ms);
  out.Set("build_seconds", row.build_seconds);
  return out;
}

int Main(int argc, char** argv) {
  const std::string output = argc > 1 ? argv[1] : "BENCH_vectordb.json";
  const size_t n = EnvSize("LLMMS_BENCH_VECTORS", 1000000);
  const size_t dim = EnvSize("LLMMS_BENCH_DIM", 64);
  const size_t num_queries = EnvSize("LLMMS_BENCH_QUERIES", 24);
  const size_t k = EnvSize("LLMMS_BENCH_K", 10);
  const size_t pool_threads = EnvSize(
      "LLMMS_BENCH_POOL", std::max<size_t>(1, std::thread::hardware_concurrency()));

  std::fprintf(stderr, "durability phase\n");
  Json wal_rows = Json::MakeArray();
  wal_rows.Append(BenchWalAppend(WriteAheadLog::SyncPolicy::kNone, "none",
                                 200000, 128));
  wal_rows.Append(BenchWalAppend(WriteAheadLog::SyncPolicy::kGroupCommit,
                                 "group_commit", 30000, 128));
  wal_rows.Append(BenchWalAppend(WriteAheadLog::SyncPolicy::kEveryRecord,
                                 "every_record", 5000, 128));
  for (size_t i = 0; i < wal_rows.Size(); ++i) {
    std::fprintf(stderr, "  wal %-12s %.0f appends/s\n",
                 wal_rows.At(i)["sync_policy"].AsString().c_str(),
                 wal_rows.At(i)["appends_per_sec"].AsDouble(0.0));
  }
  Json snapshot_row = BenchSnapshotSave(100000, dim);
  std::fprintf(stderr, "  snapshot save %.0f items/s\n",
               snapshot_row["items_per_sec"].AsDouble(0.0));
  Json durability = Json::MakeObject();
  durability.Set("wal_append", std::move(wal_rows));
  durability.Set("snapshot_save", std::move(snapshot_row));

  std::fprintf(stderr,
               "pareto phase: %zu vectors, dim %zu, %zu queries, k=%zu\n", n,
               dim, num_queries, k);
  Rng rng(0xBEEF);
  ClusteredSampler sampler(&rng, dim, /*num_clusters=*/64);
  std::vector<Vector> corpus;
  corpus.reserve(n);
  for (size_t i = 0; i < n; ++i) corpus.push_back(sampler.Sample());
  std::vector<Vector> queries;
  for (size_t i = 0; i < num_queries; ++i) queries.push_back(sampler.Sample());

  std::unique_ptr<ThreadPool> pool;
  if (pool_threads > 1) pool = std::make_unique<ThreadPool>(pool_threads);

  const std::vector<size_t> shard_sweep = {1, 2, 4, 8};
  const std::vector<size_t> overfetch_sweep = {2, 4, 8, 16, 32};

  // Ground truth + baseline: single shard, quantization off — byte-for-byte
  // the pre-sharding query path (vectordb_shard_test asserts this).
  std::vector<std::unordered_set<std::string>> truth(num_queries);
  std::vector<ParetoRow> rows;
  double baseline_qps = 0.0;
  for (const size_t shards : shard_sweep) {
    for (const bool quantized : {false, true}) {
      double build_seconds = 0.0;
      auto collection = BuildCollection(corpus, dim, shards, quantized,
                                        pool.get(), &build_seconds);
      if (shards == 1 && !quantized) {
        for (size_t q = 0; q < num_queries; ++q) {
          const auto exact = *collection->Query(queries[q], k);
          for (const auto& hit : exact) truth[q].insert(hit.id);
        }
      }
      const auto sweep =
          quantized ? overfetch_sweep : std::vector<size_t>{0};
      for (const size_t overfetch : sweep) {
        if (quantized) collection->set_quantization_overfetch(overfetch);
        ParetoRow row = MeasureRow(*collection, queries, k, truth);
        row.shards = shards;
        row.quantized = quantized;
        row.overfetch = overfetch;
        row.build_seconds = build_seconds;
        if (shards == 1 && !quantized) baseline_qps = row.qps;
        std::fprintf(stderr,
                     "  shards=%zu %s%-2zu  recall %.3f  qps %.1f  "
                     "%.2f ms/query\n",
                     shards, quantized ? "overfetch=" : "exact     ",
                     overfetch, row.recall, row.qps, row.mean_query_ms);
        rows.push_back(row);
      }
    }
  }

  // Headline: fastest multi-shard quantized point within 0.5% of exact
  // recall, against the single-shard exact baseline.
  const ParetoRow* best = nullptr;
  for (const auto& row : rows) {
    if (row.shards < 2 || !row.quantized) continue;
    if (row.recall < 0.995) continue;
    if (best == nullptr || row.qps > best->qps) best = &row;
  }
  Json headline = Json::MakeObject();
  headline.Set("single_shard_exact_qps", baseline_qps);
  if (best != nullptr) {
    headline.Set("config", ToJson(*best));
    headline.Set("qps_vs_single_shard_exact",
                 baseline_qps > 0.0 ? best->qps / baseline_qps : 0.0);
    std::fprintf(stderr,
                 "headline: shards=%zu overfetch=%zu  recall %.3f  "
                 "%.2fx single-shard exact qps\n",
                 best->shards, best->overfetch, best->recall,
                 baseline_qps > 0.0 ? best->qps / baseline_qps : 0.0);
  }

  Json config = Json::MakeObject();
  config.Set("vectors", n);
  config.Set("dim", dim);
  config.Set("queries", num_queries);
  config.Set("k", k);
  config.Set("index", "flat");
  config.Set("metric", "cosine");
  config.Set("pool_threads", pool_threads);
  config.Set("quantization_train_size", 4096);

  Json out = Json::MakeObject();
  out.Set("bench", "vectordb");
  out.Set("description",
          "WAL/snapshot durability throughput, then the recall-vs-QPS "
          "Pareto for sharded exact vs. quantized two-stage retrieval; "
          "recall is against the single-shard exact ground truth");
  out.Set("config", std::move(config));
  out.Set("durability", std::move(durability));
  Json pareto = Json::MakeArray();
  for (const auto& row : rows) pareto.Append(ToJson(row));
  out.Set("pareto", std::move(pareto));
  out.Set("headline", std::move(headline));

  FILE* f = std::fopen(output.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", output.c_str());
    return 1;
  }
  const std::string dump = out.Dump(2);
  std::fwrite(dump.data(), 1, dump.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", output.c_str());
  return 0;
}

}  // namespace
}  // namespace llmms::bench

int main(int argc, char** argv) { return llmms::bench::Main(argc, argv); }
